/**
 * @file
 * Implementation of the open-loop serving model.
 */

#include "service.hh"

#include <algorithm>
#include <cstdio>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/attribution.hh"
#include "telemetry/slo.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::embedding
{

Tick
ServiceReport::percentileTotal(double p) const
{
    FAFNIR_ASSERT(!requests.empty(), "empty report");
    FAFNIR_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    std::vector<Tick> totals;
    totals.reserve(requests.size());
    for (const auto &r : requests)
        totals.push_back(r.totalTime());
    std::sort(totals.begin(), totals.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(totals.size() - 1));
    return totals[idx];
}

double
ServiceReport::meanQueueTicks() const
{
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : requests)
        sum += static_cast<double>(r.queueTime());
    return sum / static_cast<double>(requests.size());
}

ServiceReport
serveOpenLoop(const std::vector<Batch> &batches, Tick inter_arrival,
              const std::function<Tick(const Batch &, Tick)> &serve)
{
    FAFNIR_ASSERT(inter_arrival > 0, "zero inter-arrival time");

    ServiceReport report;
    report.requests.reserve(batches.size());
    if (auto *ts = telemetry::sink()) {
        ts->setThreadName(telemetry::kPidService, 0, "queue");
        ts->setThreadName(telemetry::kPidService, 1, "serve");
    }
    Tick engine_free = 0;
    for (std::size_t i = 0; i < batches.size(); ++i) {
        ServedRequest request;
        request.arrival = static_cast<Tick>(i) * inter_arrival;
        request.started = std::max(request.arrival, engine_free);
        request.completed = serve(batches[i], request.started);
        FAFNIR_ASSERT(request.completed >= request.started,
                      "service went backwards");
        engine_free = request.completed;
        if (auto *ts = telemetry::sink()) {
            // Queueing and service phases of each batch as stacked spans,
            // joined by a flow arrow when the batch actually queued.
            const std::string label = "batch " + std::to_string(i);
            if (request.queueTime() > 0) {
                ts->completeEvent(telemetry::kPidService, 0,
                                  "service.queue", label + " (queued)",
                                  request.arrival, request.queueTime());
            }
            ts->completeEvent(telemetry::kPidService, 1, "service.serve",
                              label, request.started,
                              request.serviceTime());
            if (request.queueTime() > 0) {
                const std::uint64_t fid = ts->newFlowId();
                ts->flowBegin(fid, telemetry::kPidService, 0,
                              "service.flow", label, request.arrival);
                ts->flowEnd(fid, telemetry::kPidService, 1,
                            "service.flow", label, request.started);
            }
        }
        if (auto *attr = telemetry::attribution())
            attr->recordBatchQueueWait(request.queueTime());
        report.requests.push_back(request);
    }

    // Saturated when the queue delay keeps growing through the run:
    // compare mean queueing of the last quarter against the first.
    const std::size_t n = report.requests.size();
    if (n >= 8) {
        auto mean_queue = [&](std::size_t lo, std::size_t hi) {
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                sum += static_cast<double>(
                    report.requests[i].queueTime());
            return sum / static_cast<double>(hi - lo);
        };
        const double head = mean_queue(0, n / 4);
        const double tail = mean_queue(n - n / 4, n);
        report.saturated = tail > 2.0 * head + 1000.0;
    }
    return report;
}

const char *
toString(DegradeReason reason)
{
    switch (reason) {
      case DegradeReason::None:
        return "none";
      case DegradeReason::InvalidQuery:
        return "invalid-query";
      case DegradeReason::DeadlineExceeded:
        return "deadline-exceeded";
      case DegradeReason::FaultPersisted:
        return "fault-persisted";
    }
    return "unknown";
}

namespace
{

/** A degradation/recovery instant on the service trace track. */
void
traceGuard(const char *what, Tick at, double value)
{
    if (auto *ts = telemetry::sink()) {
        ts->instantEvent(telemetry::kPidService, 2, "service.guard",
                         what, at, {{"n", value}});
    }
}

} // namespace

ServiceGuard::ServiceGuard(const GuardConfig &config, ServeFn serve)
    : config_(config), serve_(std::move(serve))
{
    FAFNIR_ASSERT(config_.maxAttempts >= 1,
                  "guard needs at least one serving attempt");
    if (auto *ts = telemetry::sink())
        ts->setThreadName(telemetry::kPidService, 2, "guard");
}

GuardedRequest
ServiceGuard::serve(const Batch &batch, Tick arrival)
{
    ++requests_;
    GuardedRequest request;
    request.arrival = arrival;
    request.outcomes.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        request.outcomes[i].position = i;

    // Admission: defective queries never reach the engine — they come
    // back tagged with the defect that rejected them.
    for (const QueryIssue &issue :
         batch.validate(config_.indexLimit, config_.maxQueryWidth)) {
        QueryOutcome &outcome = request.outcomes[issue.position];
        outcome.reason = DegradeReason::InvalidQuery;
        outcome.defect = issue.defect;
        ++rejected_;
        traceGuard("rejected", arrival,
                   static_cast<double>(issue.position));
    }

    std::vector<std::size_t> pending;
    pending.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (request.outcomes[i].reason == DegradeReason::None)
            pending.push_back(i);
    }

    request.started = std::max(arrival, engineFree_);
    Tick at = request.started;
    Tick last_complete = request.started;
    Tick backoff = config_.retryBackoff;
    unsigned attempt = 0;
    bool fault_persisted = false;

    // SLO-driven load shed: while a burn-rate alert is active, serve
    // with a single attempt so the queue drains instead of compounding
    // the overload with retries. The decision is taken once, at
    // admission, so one request sees one consistent policy.
    unsigned allowed_attempts = config_.maxAttempts;
    if (config_.sloLoadShed) {
        telemetry::SloMonitor *monitor = telemetry::sloMonitor();
        if (monitor != nullptr && monitor->anyActive()) {
            allowed_attempts = 1;
            ++shedRequests_;
            traceGuard("shed", arrival, 1.0);
        }
    }

    while (!pending.empty() && attempt < allowed_attempts) {
        ++attempt;

        // The engine contract (Batch::check) wants dense ids, so each
        // attempt serves a renumbered sub-batch of the pending queries.
        Batch sub;
        sub.queries.reserve(pending.size());
        for (std::size_t k = 0; k < pending.size(); ++k) {
            Query q = batch.queries[pending[k]];
            q.id = static_cast<QueryId>(k);
            sub.queries.push_back(std::move(q));
        }
        for (std::size_t pos : pending)
            ++request.outcomes[pos].attempts;

        fault::FaultPlan *plan = fault::plan();
        const std::uint64_t fired_before =
            plan != nullptr ? plan->totalFired() : 0;
        const ServeSample sample = serve_(sub, at);
        FAFNIR_ASSERT(sample.complete >= at, "service went backwards");
        last_complete = sample.complete;
        const bool faulted = config_.retryOnFault && plan != nullptr &&
                             plan->totalFired() > fired_before;

        if (faulted && attempt < allowed_attempts) {
            // Transient faults detected: the whole attempt is suspect.
            // Discard it and retry everything still pending, after an
            // exponentially growing backoff.
            ++retries_;
            traceGuard("retry", sample.complete,
                       static_cast<double>(attempt));
            at = sample.complete + backoff;
            backoff *= 2;
            continue;
        }
        if (faulted && attempt < config_.maxAttempts)
            ++shedRetries_; // a retry the active shed suppressed
        fault_persisted = faulted;

        // Accept completions, collecting per-query deadline misses.
        std::vector<std::size_t> missed;
        for (std::size_t k = 0; k < pending.size(); ++k) {
            const std::size_t pos = pending[k];
            const Tick done = k < sample.queryComplete.size()
                                  ? sample.queryComplete[k]
                                  : sample.complete;
            if (config_.queryDeadline != 0 &&
                done > arrival + config_.queryDeadline) {
                ++timeouts_;
                traceGuard("timeout", done, static_cast<double>(pos));
                if (auto *rec = telemetry::flightRecorder()) {
                    char detail[96];
                    std::snprintf(
                        detail, sizeof detail,
                        "query %llu missed deadline by %llu ticks",
                        static_cast<unsigned long long>(pos),
                        static_cast<unsigned long long>(
                            done - arrival - config_.queryDeadline));
                    rec->trigger(telemetry::Trigger::DeadlineMiss, done,
                                 detail);
                }
                missed.push_back(pos);
            } else {
                request.outcomes[pos].completed = done;
            }
        }

        if (missed.empty())
            pending.clear();
        else
            pending.swap(missed);
        if (!pending.empty() && attempt < allowed_attempts) {
            // Deadline misses are retried alone: met queries keep their
            // results, the stragglers get a fresh (smaller) attempt.
            ++retries_;
            traceGuard("retry", last_complete,
                       static_cast<double>(attempt));
            at = last_complete + backoff;
            backoff *= 2;
        } else if (!pending.empty() && attempt < config_.maxAttempts) {
            ++shedRetries_;
        }
    }

    // Whatever is still pending exhausted its attempts.
    if (!pending.empty()) {
        if (auto *rec = telemetry::flightRecorder()) {
            char detail[96];
            std::snprintf(detail, sizeof detail,
                          "%llu queries exhausted %u attempts",
                          static_cast<unsigned long long>(pending.size()),
                          attempt);
            rec->trigger(telemetry::Trigger::RetryExhausted,
                         last_complete, detail);
        }
    }
    for (std::size_t pos : pending) {
        request.outcomes[pos].reason = DegradeReason::DeadlineExceeded;
        request.outcomes[pos].completed = 0;
        ++expired_;
        traceGuard("expired", last_complete, static_cast<double>(pos));
    }

    for (QueryOutcome &outcome : request.outcomes) {
        if (outcome.served()) {
            if (fault_persisted) {
                // Served on an attempt that still saw injected faults:
                // the result is returned, but tagged, never silent.
                outcome.reason = DegradeReason::FaultPersisted;
                ++suspect_;
            }
            ++request.servedQueries;
            ++served_;
        } else {
            ++request.droppedQueries;
        }
        // Request-level tag: the worst per-query degradation.
        if (outcome.reason != DegradeReason::None &&
            static_cast<std::uint8_t>(outcome.reason) >
                static_cast<std::uint8_t>(request.degraded)) {
            request.degraded = outcome.reason;
        }
    }
    if (request.partial())
        ++partial_;

    request.attempts = attempt;
    request.completed = last_complete;
    engineFree_ = std::max(engineFree_, request.completed);

    // Feed the windowed telemetry engine and SLO monitor (when
    // installed): per-query latency and availability SLIs, sorted by
    // completion tick so burn-rate windows close in order.
    telemetry::TimeSeries *series = telemetry::timeseries();
    telemetry::SloMonitor *monitor = telemetry::sloMonitor();
    if (series != nullptr || monitor != nullptr) {
        struct SliRow
        {
            Tick tick;
            double latencyUs;
            bool served;
            bool clean;
        };
        std::vector<SliRow> rows;
        rows.reserve(request.outcomes.size());
        for (const QueryOutcome &o : request.outcomes) {
            const Tick tick = o.served() ? o.completed : last_complete;
            const double latencyUs =
                o.served() ? static_cast<double>(o.completed - arrival) /
                                 static_cast<double>(kTicksPerUs)
                           : 0.0;
            rows.push_back({tick, latencyUs, o.served(),
                            o.reason == DegradeReason::None});
        }
        std::stable_sort(rows.begin(), rows.end(),
                         [](const SliRow &a, const SliRow &b) {
                             return a.tick < b.tick;
                         });
        telemetry::WindowedHistogram *winLatency =
            series != nullptr
                ? &series->histogram("guard.latency_us",
                                     "arrival-to-completion per served "
                                     "query")
                : nullptr;
        telemetry::WindowedCounter *winServed =
            series != nullptr ? &series->counter("guard.served") : nullptr;
        telemetry::WindowedCounter *winDropped =
            series != nullptr ? &series->counter("guard.dropped")
                              : nullptr;
        for (const SliRow &row : rows) {
            if (series != nullptr) {
                if (row.served) {
                    winLatency->record(row.tick, row.latencyUs);
                    winServed->record(row.tick);
                } else {
                    winDropped->record(row.tick);
                }
            }
            if (monitor != nullptr) {
                if (row.served)
                    monitor->recordLatency(row.tick, row.latencyUs);
                monitor->recordOutcome(row.tick,
                                       row.served && row.clean);
            }
        }
    }
    return request;
}

void
ServiceGuard::registerStats(StatGroup &group) const
{
    group.addCounter("requests", requests_, "guarded requests served");
    group.addCounter("retries", retries_,
                     "serving attempts repeated after faults/timeouts");
    group.addCounter("timeouts", timeouts_,
                     "per-query deadline misses observed");
    group.addCounter("rejectedQueries", rejected_,
                     "queries dropped at admission (invalid)");
    group.addCounter("expiredQueries", expired_,
                     "queries dropped after exhausting retries");
    group.addCounter("suspectQueries", suspect_,
                     "queries served while faults persisted (tagged)");
    group.addCounter("servedQueries", served_,
                     "queries served to completion");
    group.addCounter("partialRequests", partial_,
                     "requests answered with partial results");
    group.addCounter("shedRequests", shedRequests_,
                     "requests served single-attempt under an active "
                     "SLO alert");
    group.addCounter("shedRetries", shedRetries_,
                     "retries suppressed by SLO load shed");
}

std::size_t
GuardedReport::servedQueries() const
{
    std::size_t total = 0;
    for (const auto &r : requests)
        total += r.servedQueries;
    return total;
}

std::size_t
GuardedReport::droppedQueries() const
{
    std::size_t total = 0;
    for (const auto &r : requests)
        total += r.droppedQueries;
    return total;
}

std::size_t
GuardedReport::partialRequests() const
{
    std::size_t total = 0;
    for (const auto &r : requests)
        total += r.partial() ? 1 : 0;
    return total;
}

GuardedReport
serveGuardedOpenLoop(const std::vector<Batch> &batches,
                     Tick inter_arrival, ServiceGuard &guard)
{
    // inter_arrival == 0 is the closed-loop case: every request arrives
    // at tick 0 and the guard's engine serialization paces them.
    GuardedReport report;
    report.requests.reserve(batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
        report.requests.push_back(
            guard.serve(batches[i], static_cast<Tick>(i) * inter_arrival));
    }
    return report;
}

} // namespace fafnir::embedding
