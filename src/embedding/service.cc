/**
 * @file
 * Implementation of the open-loop serving model.
 */

#include "service.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::embedding
{

Tick
ServiceReport::percentileTotal(double p) const
{
    FAFNIR_ASSERT(!requests.empty(), "empty report");
    FAFNIR_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    std::vector<Tick> totals;
    totals.reserve(requests.size());
    for (const auto &r : requests)
        totals.push_back(r.totalTime());
    std::sort(totals.begin(), totals.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(totals.size() - 1));
    return totals[idx];
}

double
ServiceReport::meanQueueTicks() const
{
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : requests)
        sum += static_cast<double>(r.queueTime());
    return sum / static_cast<double>(requests.size());
}

ServiceReport
serveOpenLoop(const std::vector<Batch> &batches, Tick inter_arrival,
              const std::function<Tick(const Batch &, Tick)> &serve)
{
    FAFNIR_ASSERT(inter_arrival > 0, "zero inter-arrival time");

    ServiceReport report;
    report.requests.reserve(batches.size());
    if (auto *ts = telemetry::sink()) {
        ts->setThreadName(telemetry::kPidService, 0, "queue");
        ts->setThreadName(telemetry::kPidService, 1, "serve");
    }
    Tick engine_free = 0;
    for (std::size_t i = 0; i < batches.size(); ++i) {
        ServedRequest request;
        request.arrival = static_cast<Tick>(i) * inter_arrival;
        request.started = std::max(request.arrival, engine_free);
        request.completed = serve(batches[i], request.started);
        FAFNIR_ASSERT(request.completed >= request.started,
                      "service went backwards");
        engine_free = request.completed;
        if (auto *ts = telemetry::sink()) {
            // Queueing and service phases of each batch as stacked spans.
            const std::string label = "batch " + std::to_string(i);
            if (request.queueTime() > 0) {
                ts->completeEvent(telemetry::kPidService, 0,
                                  "service.queue", label + " (queued)",
                                  request.arrival, request.queueTime());
            }
            ts->completeEvent(telemetry::kPidService, 1, "service.serve",
                              label, request.started,
                              request.serviceTime());
        }
        report.requests.push_back(request);
    }

    // Saturated when the queue delay keeps growing through the run:
    // compare mean queueing of the last quarter against the first.
    const std::size_t n = report.requests.size();
    if (n >= 8) {
        auto mean_queue = [&](std::size_t lo, std::size_t hi) {
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                sum += static_cast<double>(
                    report.requests[i].queueTime());
            return sum / static_cast<double>(hi - lo);
        };
        const double head = mean_queue(0, n / 4);
        const double tail = mean_queue(n - n / 4, n);
        report.saturated = tail > 2.0 * head + 1000.0;
    }
    return report;
}

} // namespace fafnir::embedding
