/**
 * @file
 * A small dense feed-forward network.
 *
 * Recommendation inference is embedding lookup FOLLOWED by neural-network
 * layers (fully-connected / ReLU, Section II). Fafnir accelerates the
 * lookup; this MLP supplies the rest of the pipeline so the serving
 * example computes real scores end to end, with a host-side latency
 * model (the paper treats FC time as a fixed host cost — here it is
 * derived from the layer FLOPs and an effective host throughput).
 *
 * Weights are synthesized deterministically from the layer seed, like
 * EmbeddingStore's vectors: reproducible everywhere with no files.
 */

#ifndef FAFNIR_EMBEDDING_MLP_HH
#define FAFNIR_EMBEDDING_MLP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "embedding/table.hh"

namespace fafnir::embedding
{

/** One dense layer with optional ReLU. */
class DenseLayer
{
  public:
    DenseLayer(unsigned in, unsigned out, bool relu, std::uint64_t seed);

    Vector forward(const Vector &input) const;

    unsigned inputDim() const { return in_; }
    unsigned outputDim() const { return out_; }

    /** Multiply-accumulates of one forward pass. */
    std::uint64_t
    flops() const
    {
        return 2ull * in_ * out_;
    }

    /** Deterministic weight (row-major) and bias synthesis. */
    float weight(unsigned row, unsigned col) const;
    float bias(unsigned row) const;

  private:
    unsigned in_;
    unsigned out_;
    bool relu_;
    std::uint64_t seed_;
};

/** A stack of dense layers (ReLU between, linear output). */
class Mlp
{
  public:
    /** @param widths layer widths including input and output dims. */
    Mlp(const std::vector<unsigned> &widths, std::uint64_t seed);

    Vector forward(const Vector &input) const;

    unsigned inputDim() const { return layers_.front().inputDim(); }
    unsigned outputDim() const { return layers_.back().outputDim(); }

    std::uint64_t flops() const;

    /**
     * Host execution latency at an effective @p gflops throughput
     * (GEMV-bound small-batch inference sits well under peak).
     */
    Tick
    latencyTicks(double gflops) const
    {
        return static_cast<Tick>(static_cast<double>(flops()) / gflops *
                                 1e3); // flops/1e9 * 1e12 ps
    }

    const std::vector<DenseLayer> &layers() const { return layers_; }

  private:
    std::vector<DenseLayer> layers_;
};

} // namespace fafnir::embedding

#endif // FAFNIR_EMBEDDING_MLP_HH
