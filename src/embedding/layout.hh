/**
 * @file
 * Placement of embedding vectors in physical memory.
 *
 * VectorLayout is the Figure 4b mapping: whole vectors at consecutive
 * block-aligned addresses, which the BlockRank interleave spreads
 * round-robin over all ranks (rank = bits [9:13] of the address for 512 B
 * vectors and 32 ranks). Fafnir, RecNMP, and the CPU baseline share this
 * layout. TensorDIMM's column-major striping is computed by its engine
 * from sliceBytes(); see baselines/tensordimm.hh.
 */

#ifndef FAFNIR_EMBEDDING_LAYOUT_HH
#define FAFNIR_EMBEDDING_LAYOUT_HH

#include "common/types.hh"
#include "dram/address.hh"
#include "embedding/table.hh"

namespace fafnir::embedding
{

/** Whole-vector row-major placement. */
class VectorLayout
{
  public:
    VectorLayout(const TableConfig &tables, const dram::AddressMapper &mapper)
        : tables_(tables), mapper_(mapper)
    {
        FAFNIR_ASSERT(mapper.blockBytes() == tables.vectorBytes,
                      "interleave block must equal the vector size (",
                      tables.vectorBytes, " B), got ", mapper.blockBytes());
    }

    /**
     * Physical address of the first byte of vector @p index. Tables are
     * staggered by one vector slot each so that equally-ranked rows of
     * different tables (the hot heads of Zipfian tables) do not all land
     * on the same rank — table sizes are multiples of the rank count, so
     * an unstaggered layout would alias them.
     */
    Addr
    addressOf(IndexId index) const
    {
        const Addr slot = static_cast<Addr>(index) +
                          tables_.tableOf(index);
        return slot * tables_.vectorBytes;
    }

    /** Global rank holding vector @p index. */
    unsigned
    rankOf(IndexId index) const
    {
        const auto coords = mapper_.decode(addressOf(index));
        return coords.globalRank(mapper_.geometry());
    }

    /** Global DIMM holding vector @p index. */
    unsigned
    dimmOf(IndexId index) const
    {
        const auto coords = mapper_.decode(addressOf(index));
        return coords.globalDimm(mapper_.geometry());
    }

    /** Channel holding vector @p index. */
    unsigned
    channelOf(IndexId index) const
    {
        return mapper_.decode(addressOf(index)).channel;
    }

    const TableConfig &tables() const { return tables_; }
    const dram::AddressMapper &mapper() const { return mapper_; }

  private:
    TableConfig tables_;
    const dram::AddressMapper &mapper_;
};

} // namespace fafnir::embedding

#endif // FAFNIR_EMBEDDING_LAYOUT_HH
