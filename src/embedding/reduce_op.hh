/**
 * @file
 * Element-wise reduction operators.
 *
 * The paper's Section II: "a simple reduction operation (e.g.,
 * element-wise summation, minimum, average) is applied on the gathered
 * embedding vectors". Sum, Min, and Max are associative and commutative
 * and run unchanged through the tree; Mean is a Sum whose result the
 * root scales by 1/q (the tree cannot average incrementally, the
 * hardware applies the scale at the output stage).
 */

#ifndef FAFNIR_EMBEDDING_REDUCE_OP_HH
#define FAFNIR_EMBEDDING_REDUCE_OP_HH

#include <algorithm>
#include <cstddef>

namespace fafnir::embedding
{

/** The reduction applied across a query's vectors. */
enum class ReduceOp
{
    Sum,
    Min,
    Max,
    /** Sum in the tree, scaled by 1/q at the root output stage. */
    Mean,
};

/** Combine two elements under @p op (Mean combines like Sum). */
inline float
combine(ReduceOp op, float a, float b)
{
    switch (op) {
      case ReduceOp::Sum:
      case ReduceOp::Mean:
        return a + b;
      case ReduceOp::Min:
        return std::min(a, b);
      case ReduceOp::Max:
        return std::max(a, b);
    }
    return a + b;
}

/** Root-stage finalization: scale Mean by the gathered count. */
inline float
finalize(ReduceOp op, float acc, std::size_t count)
{
    if (op == ReduceOp::Mean && count > 0)
        return acc / static_cast<float>(count);
    return acc;
}

inline const char *
toString(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Sum:
        return "sum";
      case ReduceOp::Min:
        return "min";
      case ReduceOp::Max:
        return "max";
      case ReduceOp::Mean:
        return "mean";
    }
    return "?";
}

} // namespace fafnir::embedding

#endif // FAFNIR_EMBEDDING_REDUCE_OP_HH
