/**
 * @file
 * Quantization-kernel implementations: scalar loops plus hand-written
 * AVX2 selected once at startup, sharing the reduce_kernels dispatch
 * idiom (and its exactness discipline: every backend bit-identical to
 * the scalar reference for finite inputs).
 */

#include "quantize.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#define FAFNIR_QUANT_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace fafnir::embedding
{

namespace
{

using FnAbsMax = float (*)(const float *, std::size_t);
using FnQuant = void (*)(const float *, std::size_t, float, std::int8_t *);
using FnQuantFull = float (*)(const float *, std::size_t, std::int8_t *);
using FnDequant = void (*)(const std::int8_t *, std::size_t, float,
                           float *);

/**
 * int8 scale for a vector whose abs-max is @p peak (> 0, finite):
 * scale = pow2Ceil(peak) / 128 and its exact reciprocal, both by
 * exponent-field arithmetic — divides here sit on the per-vector
 * critical path between the abs-max pass and the quant pass and
 * dominate small-dim throughput. peak/scale <= 128, so codes live on
 * [-128, 127] with at most the peak band clipped one step (the 127
 * rail); the scalar clamp and the AVX2 pack saturation agree. The
 * mantissa round-up is the branchless carry trick: adding 0x007fffff
 * overflows into the exponent exactly when the mantissa is nonzero.
 */
inline float
int8ScaleFromPeak(float peak, float *inv_out)
{
    std::uint32_t bits;
    std::memcpy(&bits, &peak, sizeof bits);
    const std::uint32_t p2 = (bits + 0x007fffffu) & 0x7f800000u;
    const std::uint32_t scale_bits = p2 - (7u << 23);
    const std::uint32_t inv_bits = 0x82800000u - p2; // 2^(134 - e)
    float scale, inv;
    std::memcpy(&scale, &scale_bits, sizeof scale);
    std::memcpy(&inv, &inv_bits, sizeof inv);
    *inv_out = inv;
    return scale;
}

// ---- scalar backend ---------------------------------------------------

float
absMaxScalar(const float *src, std::size_t n)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(src[i]));
    return m;
}

void
quantizeInt8Scalar(const float *src, std::size_t n, float inv_scale,
                   std::int8_t *codes)
{
    for (std::size_t i = 0; i < n; ++i) {
        // nearbyint under the default rounding mode is round-to-nearest-
        // even — the same rounding _mm256_cvtps_epi32 performs. The
        // reciprocal multiply is bit-identical to dividing by the scale
        // because scales are powers of two (exact reciprocal, exact
        // mantissa-preserving scaling) — and runs at multiply
        // throughput instead of divide throughput. The clamp matches
        // the AVX2 pack saturation ([-128, 127], asymmetric): only the
        // vector's peak band can reach the rails at all.
        int q = static_cast<int>(std::nearbyint(src[i] * inv_scale));
        q = std::clamp(q, -128, 127);
        codes[i] = static_cast<std::int8_t>(q);
    }
}

void
dequantizeInt8Scalar(const std::int8_t *codes, std::size_t n, float scale,
                     float *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(codes[i]) * scale;
}

float
quantizeInt8FullScalar(const float *src, std::size_t n, std::int8_t *codes)
{
    const float peak = absMaxScalar(src, n);
    if (peak == 0.0f) {
        std::memset(codes, 0, n);
        return 0.0f;
    }
    float inv_scale;
    const float scale = int8ScaleFromPeak(peak, &inv_scale);
    quantizeInt8Scalar(src, n, inv_scale, codes);
    return scale;
}

// ---- AVX2 backend -----------------------------------------------------
// The divide, convert (round-to-nearest-even), and integer clamp mirror
// the scalar path operation for operation, so codes match bit for bit;
// abs-max is an exact order-invariant reduction over finite inputs.

#ifdef FAFNIR_QUANT_HAVE_AVX2

// The *Impl bodies are always_inline so quantizeInt8FullAvx2 can fuse
// both passes into one frame; the address-taken dispatch-table entries
// are thin wrappers below (an address-taken function itself cannot be
// always_inline).
__attribute__((target("avx2"), always_inline)) inline float
absMaxAvx2Impl(const float *src, std::size_t n)
{
    const __m256 sign = _mm256_set1_ps(-0.0f);
    // Four independent accumulators: a single max_ps chain is latency-
    // bound at one load per vmaxps latency, far below load throughput.
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_max_ps(acc0,
                             _mm256_andnot_ps(sign,
                                              _mm256_loadu_ps(src + i)));
        acc1 = _mm256_max_ps(
            acc1, _mm256_andnot_ps(sign, _mm256_loadu_ps(src + i + 8)));
        acc2 = _mm256_max_ps(
            acc2, _mm256_andnot_ps(sign, _mm256_loadu_ps(src + i + 16)));
        acc3 = _mm256_max_ps(
            acc3, _mm256_andnot_ps(sign, _mm256_loadu_ps(src + i + 24)));
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_max_ps(acc0,
                             _mm256_andnot_ps(sign,
                                              _mm256_loadu_ps(src + i)));
    const __m256 acc = _mm256_max_ps(_mm256_max_ps(acc0, acc1),
                                     _mm256_max_ps(acc2, acc3));
    // Shuffle-based horizontal max: the scale computation waits on this
    // result every vector, so a store + scalar-reload reduce (store-
    // forwarding latency per lane) would sit on the critical path.
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(acc),
                           _mm256_extractf128_ps(acc, 1));
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    float m = _mm_cvtss_f32(m4);
    for (; i < n; ++i)
        m = std::max(m, std::fabs(src[i]));
    return m;
}

/**
 * 8 floats -> 8 int32 codes (inv_scale multiply, see scalar). No
 * explicit clamp: the scale construction bounds finite inputs to
 * [-128, 128] (pow2ceil(peak)/128 >= peak/128), and the int16/int8
 * packs below saturate to [-128, 127] — the same rails the scalar
 * clamp applies.
 */
__attribute__((target("avx2"))) inline __m256i
quantLanes(__m256 v, __m256 inv_scale)
{
    return _mm256_cvtps_epi32(_mm256_mul_ps(v, inv_scale));
}

__attribute__((target("avx2"), always_inline)) inline void
quantizeInt8Avx2Impl(const float *src, std::size_t n, float inv_scale,
                     std::int8_t *codes)
{
    const __m256 s = _mm256_set1_ps(inv_scale);
    std::size_t i = 0;
    // 32 floats -> 32 bytes per iteration: pack four int32x8 through
    // int16 to int8, then undo the lane interleave packs introduces.
    const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    for (; i + 32 <= n; i += 32) {
        const __m256i a = quantLanes(_mm256_loadu_ps(src + i), s);
        const __m256i b = quantLanes(_mm256_loadu_ps(src + i + 8), s);
        const __m256i c = quantLanes(_mm256_loadu_ps(src + i + 16), s);
        const __m256i d = quantLanes(_mm256_loadu_ps(src + i + 24), s);
        const __m256i ab = _mm256_packs_epi32(a, b);
        const __m256i cd = _mm256_packs_epi32(c, d);
        const __m256i packed =
            _mm256_permutevar8x32_epi32(_mm256_packs_epi16(ab, cd), perm);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(codes + i),
                            packed);
    }
    for (; i < n; ++i) {
        int q = static_cast<int>(std::nearbyint(src[i] * inv_scale));
        q = std::clamp(q, -128, 127);
        codes[i] = static_cast<std::int8_t>(q);
    }
}

__attribute__((target("avx2"))) float
absMaxAvx2(const float *src, std::size_t n)
{
    return absMaxAvx2Impl(src, n);
}

__attribute__((target("avx2"))) void
quantizeInt8Avx2(const float *src, std::size_t n, float inv_scale,
                 std::int8_t *codes)
{
    quantizeInt8Avx2Impl(src, n, inv_scale, codes);
}

/**
 * The whole per-vector quantization in one dispatched call: fusing the
 * abs-max pass, the scale bit-math, and the quant pass into a single
 * target("avx2") function keeps the passes free to overlap across the
 * ABI boundary (separate calls clobber every ymm register and fence
 * with vzeroupper between the two loops over the same hot vector).
 */
__attribute__((target("avx2"))) float
quantizeInt8FullAvx2(const float *src, std::size_t n, std::int8_t *codes)
{
    const float peak = absMaxAvx2Impl(src, n);
    if (peak == 0.0f) {
        std::memset(codes, 0, n);
        return 0.0f;
    }
    float inv_scale;
    const float scale = int8ScaleFromPeak(peak, &inv_scale);
    quantizeInt8Avx2Impl(src, n, inv_scale, codes);
    return scale;
}

__attribute__((target("avx2"))) void
dequantizeInt8Avx2(const std::int8_t *codes, std::size_t n, float scale,
                   float *dst)
{
    const __m256 s = _mm256_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i bytes = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(codes + i));
        const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(v, s));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<float>(codes[i]) * scale;
}

#endif // FAFNIR_QUANT_HAVE_AVX2

struct QuantKernels
{
    FnAbsMax absMax;
    FnQuant quantInt8;
    FnQuantFull quantInt8Full;
    FnDequant dequantInt8;
    const char *backend;
};

QuantKernels
pickQuantKernels()
{
#ifdef FAFNIR_QUANT_HAVE_AVX2
    if (__builtin_cpu_supports("avx2")) {
        return {absMaxAvx2, quantizeInt8Avx2, quantizeInt8FullAvx2,
                dequantizeInt8Avx2, "avx2"};
    }
#endif
    return {absMaxScalar, quantizeInt8Scalar, quantizeInt8FullScalar,
            dequantizeInt8Scalar, "scalar"};
}

const QuantKernels &
quantKernels()
{
    static const QuantKernels k = pickQuantKernels();
    return k;
}

/**
 * Smallest power of two >= @p x (x > 0, finite). Scales and thresholds
 * are rounded up to a power of two so every dequantized value sits on a
 * low-mantissa grid (int8 codes have 7 mantissa bits, ternary values 1):
 * fp32 sums of round-tripped vectors are then exact and order-invariant,
 * which is what lets quantized tree values be pinned bit-for-bit against
 * a store-side reference that sums in a different order.
 */
inline float
pow2Ceil(float x)
{
    // Exponent-field manipulation instead of frexp/ldexp: this runs
    // once per quantized vector on the leaf path, and the libm calls
    // dominate the per-vector cost at transport-bench rates. Inputs
    // are normal, positive, finite (peaks of real payload vectors).
    std::uint32_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    const std::uint32_t exponent = bits & 0x7f800000u;
    if ((bits & 0x007fffffu) != 0u) {
        bits = exponent + 0x00800000u; // round mantissa up: next power
        float out;
        std::memcpy(&out, &bits, sizeof out);
        return out;
    }
    float out;
    std::memcpy(&out, &exponent, sizeof out);
    return out;
}

/** Ternary code of @p x under threshold @p t: 00 zero, 01 +t, 10 -t. */
inline unsigned
twoBitCode(float x, float t)
{
    if (x >= t)
        return 1u;
    if (x <= -t)
        return 2u;
    return 0u;
}

inline float
twoBitValue(unsigned code, float t)
{
    return code == 1u ? t : (code == 2u ? -t : 0.0f);
}

} // namespace

const char *
payloadFormatName(PayloadFormat format)
{
    switch (format) {
      case PayloadFormat::Fp32:
        return "fp32";
      case PayloadFormat::Int8:
        return "int8";
      case PayloadFormat::TwoBit:
        return "twobit";
    }
    return "fp32";
}

bool
parsePayloadFormat(const std::string &name, PayloadFormat &out)
{
    if (name == "fp32") {
        out = PayloadFormat::Fp32;
    } else if (name == "int8") {
        out = PayloadFormat::Int8;
    } else if (name == "twobit") {
        out = PayloadFormat::TwoBit;
    } else {
        return false;
    }
    return true;
}

std::size_t
payloadBytes(PayloadFormat format, std::size_t dim)
{
    switch (format) {
      case PayloadFormat::Fp32:
        return dim * sizeof(float);
      case PayloadFormat::Int8:
        return dim + sizeof(float);
      case PayloadFormat::TwoBit:
        return twoBitPackedBytes(dim) + sizeof(float);
    }
    return dim * sizeof(float);
}

const char *
quantizeKernelBackend()
{
    return quantKernels().backend;
}

float
absMax(const float *src, std::size_t n)
{
    return quantKernels().absMax(src, n);
}

float
quantizeInt8(const float *src, std::size_t n, std::int8_t *codes)
{
    return quantKernels().quantInt8Full(src, n, codes);
}

void
dequantizeInt8(const std::int8_t *codes, std::size_t n, float scale,
               float *dst)
{
    quantKernels().dequantInt8(codes, n, scale, dst);
}

float
quantizeTwoBit(const float *src, std::size_t n, std::uint8_t *packed)
{
    const float peak = quantKernels().absMax(src, n);
    std::memset(packed, 0, twoBitPackedBytes(n));
    if (peak == 0.0f)
        return 0.0f;
    const float t = pow2Ceil(peak) / 2.0f;
    for (std::size_t i = 0; i < n; ++i)
        packed[i >> 2] |= static_cast<std::uint8_t>(
            twoBitCode(src[i], t) << ((i & 3u) * 2u));
    return t;
}

void
dequantizeTwoBit(const std::uint8_t *packed, std::size_t n,
                 float threshold, float *dst)
{
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned code = (packed[i >> 2] >> ((i & 3u) * 2u)) & 3u;
        dst[i] = twoBitValue(code, threshold);
    }
}

float
quantizeTwoBitEf(const float *src, std::size_t n, TwoBitState &state,
                 float *dst)
{
    FAFNIR_ASSERT(state.residual.size() == n,
                  "two-bit residual dimension mismatch: ",
                  state.residual.size(), " vs ", n);
    float *residual = state.residual.data();
    float peak = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        peak = std::max(peak, std::fabs(src[i] + residual[i]));
    const float t = peak == 0.0f ? 0.0f : pow2Ceil(peak) / 2.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float carried = src[i] + residual[i];
        const float q =
            t == 0.0f ? 0.0f : twoBitValue(twoBitCode(carried, t), t);
        residual[i] = carried - q;
        dst[i] = q;
    }
    return t;
}

void
payloadRoundTrip(PayloadFormat format, float *v, std::size_t n)
{
    if (format == PayloadFormat::Fp32 || n == 0)
        return;
    if (format == PayloadFormat::Int8) {
        // Reused per thread: the leaf path round-trips every rank read.
        thread_local std::vector<std::int8_t> codes;
        codes.resize(n);
        const float scale = quantizeInt8(v, n, codes.data());
        dequantizeInt8(codes.data(), n, scale, v);
        return;
    }
    thread_local std::vector<std::uint8_t> packed;
    packed.resize(twoBitPackedBytes(n));
    const float t = quantizeTwoBit(v, n, packed.data());
    dequantizeTwoBit(packed.data(), n, t, v);
}

} // namespace fafnir::embedding
