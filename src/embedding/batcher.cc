/**
 * @file
 * Implementation of the batch composer.
 */

#include "batcher.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"

namespace fafnir::embedding
{

double
ComposedBatches::meanUniqueFraction() const
{
    if (batches.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &batch : batches)
        sum += batch.uniqueFraction();
    return sum / static_cast<double>(batches.size());
}

namespace
{

/** Pack picked queries into a dense-id batch. */
void
emit(ComposedBatches &out, const std::vector<Query> &queries,
     std::vector<std::size_t> picked)
{
    Batch batch;
    std::vector<std::size_t> origin;
    batch.queries.reserve(picked.size());
    for (std::size_t i = 0; i < picked.size(); ++i) {
        Query q = queries[picked[i]];
        q.id = static_cast<QueryId>(i);
        batch.queries.push_back(std::move(q));
        origin.push_back(picked[i]);
    }
    batch.check();
    out.batches.push_back(std::move(batch));
    out.originalIndex.push_back(std::move(origin));
}

} // namespace

ComposedBatches
composeBatches(const std::vector<Query> &queries,
               const BatcherConfig &config)
{
    FAFNIR_ASSERT(config.batchSize > 0, "batch size must be positive");
    ComposedBatches out;
    if (queries.empty())
        return out;

    if (config.policy == BatchPolicy::Fifo) {
        for (std::size_t first = 0; first < queries.size();
             first += config.batchSize) {
            const std::size_t last = std::min(
                queries.size(), first + config.batchSize);
            std::vector<std::size_t> picked;
            for (std::size_t i = first; i < last; ++i)
                picked.push_back(i);
            emit(out, queries, std::move(picked));
        }
        return out;
    }

    // Similarity: within a sliding window, seed each batch with the
    // oldest pending query (bounding its delay), then greedily add the
    // window query with the largest index overlap against the batch's
    // accumulated index set.
    std::vector<bool> used(queries.size(), false);
    std::size_t oldest = 0;
    std::size_t remaining = queries.size();
    while (remaining > 0) {
        while (oldest < queries.size() && used[oldest])
            ++oldest;
        const std::size_t window_end =
            std::min(queries.size(), oldest + config.windowSize);

        std::vector<std::size_t> picked{oldest};
        used[oldest] = true;
        --remaining;

        std::unordered_set<IndexId> batch_set(
            queries[oldest].indices.begin(),
            queries[oldest].indices.end());

        while (picked.size() < config.batchSize && remaining > 0) {
            std::size_t best = queries.size();
            std::size_t best_overlap = 0;
            for (std::size_t i = oldest + 1; i < window_end; ++i) {
                if (used[i])
                    continue;
                std::size_t score = 0;
                for (IndexId index : queries[i].indices)
                    score += batch_set.count(index);
                if (best == queries.size() || score > best_overlap) {
                    best = i;
                    best_overlap = score;
                }
            }
            if (best == queries.size())
                break; // window exhausted
            used[best] = true;
            --remaining;
            picked.push_back(best);
            batch_set.insert(queries[best].indices.begin(),
                             queries[best].indices.end());
        }
        emit(out, queries, std::move(picked));
    }
    return out;
}

} // namespace fafnir::embedding
