/**
 * @file
 * Implementation of the batch composer.
 */

#include "batcher.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/faultinject.hh"
#include "common/logging.hh"

namespace fafnir::embedding
{

double
ComposedBatches::meanUniqueFraction() const
{
    if (batches.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &batch : batches)
        sum += batch.uniqueFraction();
    return sum / static_cast<double>(batches.size());
}

namespace
{

/** Pack picked queries into a dense-id batch. */
void
emit(ComposedBatches &out, const std::vector<Query> &queries,
     std::vector<std::size_t> picked)
{
    Batch batch;
    std::vector<std::size_t> origin;
    batch.queries.reserve(picked.size());
    for (std::size_t i = 0; i < picked.size(); ++i) {
        Query q = queries[picked[i]];
        q.id = static_cast<QueryId>(i);
        batch.queries.push_back(std::move(q));
        origin.push_back(picked[i]);
    }
    batch.check();
    out.batches.push_back(std::move(batch));
    out.originalIndex.push_back(std::move(origin));
}

/** FIFO: arrival order, chunks of batchSize. */
ComposedBatches
composeFifo(const std::vector<Query> &queries,
            const BatcherConfig &config)
{
    ComposedBatches out;
    for (std::size_t first = 0; first < queries.size();
         first += config.batchSize) {
        const std::size_t last = std::min(
            queries.size(), first + config.batchSize);
        std::vector<std::size_t> picked;
        for (std::size_t i = first; i < last; ++i)
            picked.push_back(i);
        emit(out, queries, std::move(picked));
    }
    return out;
}

} // namespace

ComposedBatches
composeBatches(const std::vector<Query> &queries,
               const BatcherConfig &config)
{
    FAFNIR_ASSERT(config.batchSize > 0, "batch size must be positive");
    ComposedBatches out;
    if (queries.empty())
        return out;
    if (config.policy == BatchPolicy::Fifo)
        return composeFifo(queries, config);

    // Similarity: within a sliding window, seed each batch with the
    // oldest pending query (bounding its delay), then greedily add the
    // window query with the largest index overlap against the batch's
    // accumulated index set. Overlap scores are maintained
    // incrementally: an inverted index (table index -> window
    // candidates containing it) lets each index that newly enters the
    // batch set bump only the candidates it appears in, so a pick
    // costs one O(window) argmax scan instead of rescanning every
    // candidate against the whole set.
    std::vector<bool> used(queries.size(), false);
    std::size_t oldest = 0;
    std::size_t remaining = queries.size();
    while (remaining > 0) {
        while (oldest < queries.size() && used[oldest])
            ++oldest;
        const std::size_t window_end =
            std::min(queries.size(), oldest + config.windowSize);

        std::vector<std::size_t> picked{oldest};
        used[oldest] = true;
        --remaining;

        // Window-local candidate table. Entry c covers query index
        // oldest + 1 + c; scores track overlap with batch_set.
        const std::size_t candidates =
            window_end > oldest + 1 ? window_end - oldest - 1 : 0;
        std::vector<std::size_t> score(candidates, 0);
        std::unordered_map<IndexId, std::vector<std::size_t>> inverted;
        for (std::size_t c = 0; c < candidates; ++c) {
            if (used[oldest + 1 + c])
                continue;
            for (IndexId index : queries[oldest + 1 + c].indices)
                inverted[index].push_back(c);
        }

        std::unordered_set<IndexId> batch_set;
        auto cover = [&](const Query &q) {
            // Bump only candidates containing each index that is new
            // to the batch's set; repeats across queries cost nothing.
            for (IndexId index : q.indices) {
                if (!batch_set.insert(index).second)
                    continue;
                const auto it = inverted.find(index);
                if (it == inverted.end())
                    continue;
                for (std::size_t c : it->second)
                    ++score[c];
            }
        };
        cover(queries[oldest]);

        while (picked.size() < config.batchSize && remaining > 0) {
            // Same tie-break as the reference: the first unused
            // candidate wins; later ones must be strictly better.
            std::size_t best = queries.size();
            std::size_t best_overlap = 0;
            for (std::size_t c = 0; c < candidates; ++c) {
                if (used[oldest + 1 + c])
                    continue;
                if (best == queries.size() || score[c] > best_overlap) {
                    best = oldest + 1 + c;
                    best_overlap = score[c];
                }
            }
            if (best == queries.size())
                break; // window exhausted
            used[best] = true;
            --remaining;
            picked.push_back(best);
            cover(queries[best]);
        }
        emit(out, queries, std::move(picked));
    }
    return out;
}

ComposedBatches
composeBatchesReference(const std::vector<Query> &queries,
                        const BatcherConfig &config)
{
    FAFNIR_ASSERT(config.batchSize > 0, "batch size must be positive");
    ComposedBatches out;
    if (queries.empty())
        return out;
    if (config.policy == BatchPolicy::Fifo)
        return composeFifo(queries, config);

    std::vector<bool> used(queries.size(), false);
    std::size_t oldest = 0;
    std::size_t remaining = queries.size();
    while (remaining > 0) {
        while (oldest < queries.size() && used[oldest])
            ++oldest;
        const std::size_t window_end =
            std::min(queries.size(), oldest + config.windowSize);

        std::vector<std::size_t> picked{oldest};
        used[oldest] = true;
        --remaining;

        std::unordered_set<IndexId> batch_set(
            queries[oldest].indices.begin(),
            queries[oldest].indices.end());

        while (picked.size() < config.batchSize && remaining > 0) {
            std::size_t best = queries.size();
            std::size_t best_overlap = 0;
            for (std::size_t i = oldest + 1; i < window_end; ++i) {
                if (used[i])
                    continue;
                std::size_t score = 0;
                for (IndexId index : queries[i].indices)
                    score += batch_set.count(index);
                if (best == queries.size() || score > best_overlap) {
                    best = i;
                    best_overlap = score;
                }
            }
            if (best == queries.size())
                break; // window exhausted
            used[best] = true;
            --remaining;
            picked.push_back(best);
            batch_set.insert(queries[best].indices.begin(),
                             queries[best].indices.end());
        }
        emit(out, queries, std::move(picked));
    }
    return out;
}

std::size_t
injectQueryFaults(Batch &batch, std::uint64_t index_limit)
{
    fault::FaultPlan *p = fault::plan();
    if (p == nullptr)
        return 0;

    std::size_t corrupted = 0;
    for (Query &q : batch.queries) {
        bool touched = false;

        if (p->shouldFire(fault::Hook::QueryMalformed)) {
            // The corruption shape draws from the hook's own stream, so
            // the schedule of *other* hooks is untouched.
            Rng &rng = p->rngOf(fault::Hook::QueryMalformed);
            switch (rng.nextBelow(3)) {
              case 0: // lost payload
                q.indices.clear();
                break;
              case 1: // reordered payload (unique indices, so a swap of
                      // the ends of a 2+ element list breaks sortedness)
                if (q.indices.size() >= 2)
                    std::swap(q.indices.front(), q.indices.back());
                else
                    q.indices.clear();
                break;
              default: // index beyond the embedding space
                q.indices.push_back(static_cast<IndexId>(
                    index_limit + rng.nextBelow(1024)));
                break;
            }
            touched = true;
        }

        if (p->shouldFire(fault::Hook::QueryOversized)) {
            // Inflate to magnitude x the original width with valid,
            // sorted, unique indices — well-formed but abusive.
            const auto factor =
                static_cast<std::size_t>(
                    p->magnitude(fault::Hook::QueryOversized));
            std::size_t width =
                std::max<std::size_t>(q.indices.size() + 1,
                                      q.indices.size() * factor);
            if (index_limit != 0)
                width = std::min<std::size_t>(width, index_limit);
            q.indices.resize(width);
            for (std::size_t i = 0; i < width; ++i)
                q.indices[i] = static_cast<IndexId>(i);
            touched = true;
        }

        if (p->shouldFire(fault::Hook::QueryDupIndex) &&
            !q.indices.empty()) {
            Rng &rng = p->rngOf(fault::Hook::QueryDupIndex);
            const std::size_t at = rng.nextBelow(q.indices.size());
            q.indices.insert(q.indices.begin() +
                                 static_cast<std::ptrdiff_t>(at),
                             q.indices[at]);
            touched = true;
        }

        if (touched)
            ++corrupted;
    }
    return corrupted;
}

} // namespace fafnir::embedding
