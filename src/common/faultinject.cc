/**
 * @file
 * FaultPlan implementation: spec parsing, per-hook streams, stats.
 */

#include "faultinject.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace fafnir::fault
{

namespace
{

/** Spec name plus the default magnitude of each hook, indexed by Hook. */
struct HookInfo
{
    const char *name;
    double defaultMagnitude;
};

constexpr HookInfo kHookInfo[kNumHooks] = {
    {"dram_latency", 32.0},   // 32x nominal read latency when fired
    {"dram_stall", 200.0},    // 200 ns command stall
    {"event_delay", 50.0},    // up to 50 ns delivery jitter
    {"event_drop", 0.0},      // no magnitude
    {"event_dup", 0.0},       // no magnitude
    {"pe_backpressure", 8.0}, // 8 extra PE cycles per fired delivery
    {"pool_exhaust", 0.0},    // no magnitude
    {"query_malformed", 0.0}, // no magnitude
    {"query_oversized", 8.0}, // 8x the nominal query width
    {"query_dup_index", 0.0}, // no magnitude
};

/** splitmix64 step, used to derive independent per-hook seeds. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
toString(Hook hook)
{
    const auto i = static_cast<std::size_t>(hook);
    FAFNIR_ASSERT(i < kNumHooks, "invalid hook index ", i);
    return kHookInfo[i].name;
}

std::optional<Hook>
hookFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumHooks; ++i) {
        if (name == kHookInfo[i].name)
            return static_cast<Hook>(i);
    }
    return std::nullopt;
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed)
{
    // Expand the user seed into one independent stream per hook. The
    // double-mix decorrelates adjacent hook indices; enabling or
    // checking one hook never advances another hook's stream.
    for (std::size_t i = 0; i < kNumHooks; ++i) {
        hooks_[i].magnitude = kHookInfo[i].defaultMagnitude;
        hooks_[i].rng = Rng(mix(mix(seed) ^ (i + 1)));
    }
}

std::optional<FaultPlan>
FaultPlan::tryParse(const std::string &spec, std::uint64_t seed,
                    std::string *error)
{
    const auto fail = [&](const std::string &message) {
        if (error != nullptr)
            *error = message;
        return std::nullopt;
    };

    FaultPlan plan(seed);
    std::stringstream entries(spec);
    std::string entry;
    while (std::getline(entries, entry, ',')) {
        if (entry.empty())
            return fail("empty fault entry in spec '" + spec + "'");

        std::stringstream fields(entry);
        std::string name, rate_text, magnitude_text;
        std::getline(fields, name, ':');
        if (!std::getline(fields, rate_text, ':'))
            return fail("fault entry '" + entry +
                        "' is missing a rate (want hook:rate[:magnitude])");
        std::getline(fields, magnitude_text, ':');

        const std::optional<Hook> hook = hookFromName(name);
        if (!hook.has_value()) {
            std::string known;
            for (std::size_t i = 0; i < kNumHooks; ++i) {
                if (!known.empty())
                    known += ", ";
                known += kHookInfo[i].name;
            }
            return fail("unknown fault hook '" + name + "' (one of: " +
                        known + ")");
        }

        char *end = nullptr;
        const double rate = std::strtod(rate_text.c_str(), &end);
        if (end == rate_text.c_str() || *end != '\0' || rate < 0.0 ||
            rate > 1.0) {
            return fail("fault rate '" + rate_text + "' for hook '" + name +
                        "' is not a probability in [0, 1]");
        }

        std::optional<double> magnitude;
        if (!magnitude_text.empty()) {
            end = nullptr;
            const double m = std::strtod(magnitude_text.c_str(), &end);
            if (end == magnitude_text.c_str() || *end != '\0' || m < 0.0) {
                return fail("fault magnitude '" + magnitude_text +
                            "' for hook '" + name +
                            "' is not a non-negative number");
            }
            magnitude = m;
        }

        if (plan.enabled(*hook))
            return fail("fault hook '" + name + "' appears twice in spec");
        plan.enable(*hook, rate, magnitude);
    }

    if (!plan.anyEnabled())
        return fail("fault spec '" + spec + "' arms no hooks");
    return plan;
}

FaultPlan
FaultPlan::parse(const std::string &spec, std::uint64_t seed)
{
    std::string error;
    std::optional<FaultPlan> plan = tryParse(spec, seed, &error);
    if (!plan.has_value())
        FAFNIR_FATAL("bad --faults spec: ", error);
    return *std::move(plan);
}

void
FaultPlan::enable(Hook hook, double rate, std::optional<double> magnitude)
{
    FAFNIR_ASSERT(rate >= 0.0 && rate <= 1.0, "fault rate ", rate,
                  " out of [0, 1] for hook ", toString(hook));
    HookState &st = state(hook);
    if (st.rate <= 0.0 && rate > 0.0)
        ++armed_;
    else if (st.rate > 0.0 && rate <= 0.0)
        --armed_;
    st.rate = rate;
    if (magnitude.has_value())
        st.magnitude = *magnitude;
}

std::uint64_t
FaultPlan::totalFired() const
{
    std::uint64_t total = 0;
    for (const HookState &st : hooks_)
        total += st.fired.value();
    return total;
}

std::uint64_t
FaultPlan::totalChecked() const
{
    std::uint64_t total = 0;
    for (const HookState &st : hooks_)
        total += st.checked.value();
    return total;
}

void
FaultPlan::noteSkippedFiring(Hook hook)
{
    HookState &st = state(hook);
    if (st.rate <= 0.0)
        return;
    ++st.skipped;
    // Rate-limited visibility: a lossy plan can skip thousands of
    // firings per run; one warning plus the exit-time suppressed count
    // (and the faults.<hook>.skipped stat) tells the whole story.
    if (logging::warnEvery(std::string("faults.skipped.") +
                           toString(hook))) {
        FAFNIR_WARN("fault hook ", toString(hook),
                    " skipped a firing (lossy hook recovered); "
                    "further skips counted, not warned");
    }
}

std::uint64_t
FaultPlan::totalSkipped() const
{
    std::uint64_t total = 0;
    for (const HookState &st : hooks_)
        total += st.skipped.value();
    return total;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    bool first = true;
    for (std::size_t i = 0; i < kNumHooks; ++i) {
        if (hooks_[i].rate <= 0.0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << kHookInfo[i].name << ":" << hooks_[i].rate;
        if (hooks_[i].magnitude != kHookInfo[i].defaultMagnitude)
            os << ":" << hooks_[i].magnitude;
    }
    return os.str();
}

void
FaultPlan::registerStats(StatGroup &g) const
{
    for (std::size_t i = 0; i < kNumHooks; ++i) {
        const std::string name = kHookInfo[i].name;
        g.addCounter(name + ".checked", hooks_[i].checked,
                     "times the " + name + " hook was evaluated");
        g.addCounter(name + ".fired", hooks_[i].fired,
                     "faults injected at the " + name + " hook");
        // Only lossy event hooks skip firings (a drop unschedules one
        // firing; a dup's echo is suppressed when the event was
        // rescheduled first); keep the group free of dead rows.
        const auto hook = static_cast<Hook>(i);
        if (hook == Hook::EventDrop || hook == Hook::EventDup) {
            g.addCounter(name + ".skipped", hooks_[i].skipped,
                         "registered-event firings skipped "
                         "(dropped or suppressed duplicates)");
        }
    }
    g.addFormula("totalSkipped", [this] {
        return static_cast<double>(totalSkipped());
    }, "registered-event firings skipped across all hooks");
    g.addFormula("totalChecked", [this] {
        return static_cast<double>(totalChecked());
    }, "hook evaluations across all hooks");
    g.addFormula("totalFired", [this] {
        return static_cast<double>(totalFired());
    }, "faults injected across all hooks");
}

namespace detail
{
FaultPlan *g_plan = nullptr;
} // namespace detail

void
setPlan(FaultPlan *p)
{
    detail::g_plan = p;
}

} // namespace fafnir::fault
