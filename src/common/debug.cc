/**
 * @file
 * Implementation of the debug-flag registry.
 */

#include "debug.hh"

#include <cstdlib>
#include <sstream>

namespace fafnir
{

DebugFlags &
DebugFlags::instance()
{
    static DebugFlags flags;
    return flags;
}

DebugFlags::DebugFlags()
{
    if (const char *env = std::getenv("FAFNIR_DEBUG"))
        enableFromString(env);
}

void
DebugFlags::enableFromString(const std::string &list)
{
    std::istringstream stream(list);
    std::string name;
    while (std::getline(stream, name, ',')) {
        if (name.empty())
            continue;
        if (name == "dram") {
            enable(DebugFlag::Dram);
        } else if (name == "tree") {
            enable(DebugFlag::Tree);
        } else if (name == "host") {
            enable(DebugFlag::Host);
        } else if (name == "spmv") {
            enable(DebugFlag::Spmv);
        } else if (name == "controller") {
            enable(DebugFlag::Controller);
        } else if (name == "serving") {
            enable(DebugFlag::Serving);
        } else {
            FAFNIR_FATAL("unknown debug flag '", name,
                         "' (known: dram, tree, host, spmv, controller, "
                         "serving)");
        }
    }
}

} // namespace fafnir
