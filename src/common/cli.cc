/**
 * @file
 * Implementation of the flag parser.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace fafnir
{

void
FlagParser::add(const std::string &name, Kind kind, void *target,
                const std::string &help, std::string default_value)
{
    for (const auto &flag : flags_)
        FAFNIR_ASSERT(flag.name != name, "duplicate flag --", name);
    flags_.push_back({name, kind, target, help,
                      std::move(default_value)});
}

void
FlagParser::addUnsigned(const std::string &name, unsigned &value,
                        const std::string &help)
{
    add(name, Kind::Unsigned, &value, help, std::to_string(value));
}

void
FlagParser::addUint64(const std::string &name, std::uint64_t &value,
                      const std::string &help)
{
    add(name, Kind::Uint64, &value, help, std::to_string(value));
}

void
FlagParser::addDouble(const std::string &name, double &value,
                      const std::string &help)
{
    add(name, Kind::Double, &value, help, std::to_string(value));
}

void
FlagParser::addBool(const std::string &name, bool &value,
                    const std::string &help)
{
    add(name, Kind::Bool, &value, help, value ? "true" : "false");
}

void
FlagParser::addString(const std::string &name, std::string &value,
                      const std::string &help)
{
    add(name, Kind::String, &value, help, value);
}

void
FlagParser::assign(const Flag &flag, const std::string &text)
{
    try {
        switch (flag.kind) {
          case Kind::Unsigned:
            *static_cast<unsigned *>(flag.target) =
                static_cast<unsigned>(std::stoul(text));
            break;
          case Kind::Uint64:
            *static_cast<std::uint64_t *>(flag.target) = std::stoull(text);
            break;
          case Kind::Double:
            *static_cast<double *>(flag.target) = std::stod(text);
            break;
          case Kind::Bool:
            if (text == "true" || text == "1") {
                *static_cast<bool *>(flag.target) = true;
            } else if (text == "false" || text == "0") {
                *static_cast<bool *>(flag.target) = false;
            } else {
                FAFNIR_FATAL("--", flag.name, " expects true/false, got '",
                             text, "'");
            }
            break;
          case Kind::String:
            *static_cast<std::string *>(flag.target) = text;
            break;
        }
    } catch (const std::exception &) {
        FAFNIR_FATAL("bad value for --", flag.name, ": '", text, "'");
    }
}

void
FlagParser::printHelpAndExit(const char *argv0) const
{
    std::printf("%s — %s\n\nflags:\n", argv0, summary_.c_str());
    for (const auto &flag : flags_) {
        std::printf("  --%-16s %s (default: %s)\n", flag.name.c_str(),
                    flag.help.c_str(), flag.defaultValue.c_str());
    }
    std::exit(0);
}

void
FlagParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printHelpAndExit(argv[0]);
        FAFNIR_ASSERT(arg.rfind("--", 0) == 0, "expected --flag, got '",
                      arg, "'");
        arg = arg.substr(2);

        std::string name;
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            FAFNIR_ASSERT(i + 1 < argc, "--", name, " needs a value");
            value = argv[++i];
        }

        bool matched = false;
        for (const auto &flag : flags_) {
            if (flag.name == name) {
                assign(flag, value);
                matched = true;
                break;
            }
        }
        if (!matched)
            FAFNIR_FATAL("unknown flag --", name, " (see --help)");
    }
}

} // namespace fafnir
