/**
 * @file
 * Implementation of the flag parser.
 */

#include "cli.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace fafnir
{

namespace
{

/** Classic Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

void
FlagParser::add(const std::string &name, Kind kind, void *target,
                const std::string &help, std::string default_value)
{
    for (const auto &flag : flags_)
        FAFNIR_ASSERT(flag.name != name, "duplicate flag --", name);
    flags_.push_back({name, kind, target, help,
                      std::move(default_value)});
}

void
FlagParser::addUnsigned(const std::string &name, unsigned &value,
                        const std::string &help)
{
    add(name, Kind::Unsigned, &value, help, std::to_string(value));
}

void
FlagParser::addUint64(const std::string &name, std::uint64_t &value,
                      const std::string &help)
{
    add(name, Kind::Uint64, &value, help, std::to_string(value));
}

void
FlagParser::addDouble(const std::string &name, double &value,
                      const std::string &help)
{
    add(name, Kind::Double, &value, help, std::to_string(value));
}

void
FlagParser::addBool(const std::string &name, bool &value,
                    const std::string &help)
{
    add(name, Kind::Bool, &value, help, value ? "true" : "false");
}

void
FlagParser::addString(const std::string &name, std::string &value,
                      const std::string &help)
{
    add(name, Kind::String, &value, help, value);
}

void
FlagParser::fail(const std::string &message) const
{
    std::fprintf(stderr, "error: %s\nrun with --help for usage\n",
                 message.c_str());
    std::exit(2);
}

void
FlagParser::assign(const Flag &flag, const std::string &text)
{
    try {
        switch (flag.kind) {
          case Kind::Unsigned:
            *static_cast<unsigned *>(flag.target) =
                static_cast<unsigned>(std::stoul(text));
            break;
          case Kind::Uint64:
            *static_cast<std::uint64_t *>(flag.target) = std::stoull(text);
            break;
          case Kind::Double:
            *static_cast<double *>(flag.target) = std::stod(text);
            break;
          case Kind::Bool:
            if (text == "true" || text == "1") {
                *static_cast<bool *>(flag.target) = true;
            } else if (text == "false" || text == "0") {
                *static_cast<bool *>(flag.target) = false;
            } else {
                fail("--" + flag.name + " expects true/false, got '" +
                     text + "'");
            }
            break;
          case Kind::String:
            *static_cast<std::string *>(flag.target) = text;
            break;
        }
    } catch (const std::exception &) {
        fail("bad value for --" + flag.name + ": '" + text + "'");
    }
}

void
FlagParser::printHelpAndExit(const char *argv0) const
{
    std::printf("%s — %s\n\nflags:\n", argv0, summary_.c_str());
    for (const auto &flag : flags_) {
        std::printf("  --%-16s %s (default: %s)\n", flag.name.c_str(),
                    flag.help.c_str(), flag.defaultValue.c_str());
    }
    std::exit(0);
}

void
FlagParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printHelpAndExit(argv[0]);
        if (arg.rfind("--", 0) != 0)
            fail("expected --flag, got '" + arg + "'");
        arg = arg.substr(2);

        std::string name;
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            if (i + 1 >= argc)
                fail("--" + name + " needs a value");
            value = argv[++i];
        }

        bool matched = false;
        for (const auto &flag : flags_) {
            if (flag.name == name) {
                assign(flag, value);
                matched = true;
                break;
            }
        }
        if (!matched) {
            std::string message = "unknown flag --" + name;
            // Suggest the closest registered flag when the typo is small.
            const Flag *best = nullptr;
            std::size_t best_distance = 3; // only suggest close typos
            for (const auto &flag : flags_) {
                const std::size_t d = editDistance(name, flag.name);
                if (d < best_distance) {
                    best = &flag;
                    best_distance = d;
                }
            }
            if (best != nullptr)
                message += " (did you mean --" + best->name + "?)";
            fail(message);
        }
    }
}

} // namespace fafnir
