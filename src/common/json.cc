/**
 * @file
 * Implementation of the streaming JSON writer.
 */

#include "json.hh"

#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace fafnir
{

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepare(bool is_key)
{
    if (afterKey_) {
        FAFNIR_ASSERT(!is_key, "two keys in a row");
        afterKey_ = false;
        return;
    }
    if (scopes_.empty())
        return;
    Scope &scope = scopes_.back();
    FAFNIR_ASSERT(scope.isObject == is_key,
                  "bare value in object / key in array");
    if (scope.members++ > 0)
        os_ << ',';
    indent();
}

void
JsonWriter::beginObject()
{
    prepare(false);
    os_ << '{';
    scopes_.push_back({true, 0});
}

void
JsonWriter::endObject()
{
    FAFNIR_ASSERT(!scopes_.empty() && scopes_.back().isObject,
                  "endObject outside an object");
    const bool had_members = scopes_.back().members > 0;
    scopes_.pop_back();
    if (had_members)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    prepare(false);
    os_ << '[';
    scopes_.push_back({false, 0});
}

void
JsonWriter::endArray()
{
    FAFNIR_ASSERT(!scopes_.empty() && !scopes_.back().isObject,
                  "endArray outside an array");
    const bool had_members = scopes_.back().members > 0;
    scopes_.pop_back();
    if (had_members)
        indent();
    os_ << ']';
}

void
JsonWriter::key(const std::string &name)
{
    prepare(true);
    os_ << '"' << escape(name) << "\":";
    if (pretty_)
        os_ << ' ';
    afterKey_ = true;
}

void
JsonWriter::value(const std::string &text)
{
    prepare(false);
    os_ << '"' << escape(text) << '"';
}

void
JsonWriter::value(double number)
{
    prepare(false);
    if (!std::isfinite(number)) {
        os_ << "null"; // JSON has no NaN/Inf
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", number);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t number)
{
    prepare(false);
    os_ << number;
}

void
JsonWriter::value(std::int64_t number)
{
    prepare(false);
    os_ << number;
}

void
JsonWriter::value(bool flag)
{
    prepare(false);
    os_ << (flag ? "true" : "false");
}

void
JsonWriter::null()
{
    prepare(false);
    os_ << "null";
}

} // namespace fafnir
