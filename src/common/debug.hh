/**
 * @file
 * Category-gated debug tracing (the gem5 DPRINTF idiom).
 *
 * FAFNIR_DPRINTF(Category, ...) prints "cycle-by-cycle" diagnostics when
 * the category is enabled at runtime (DebugFlags::enable or the
 * FAFNIR_DEBUG environment variable, comma-separated). Disabled
 * categories cost one branch; message formatting is never evaluated.
 */

#ifndef FAFNIR_COMMON_DEBUG_HH
#define FAFNIR_COMMON_DEBUG_HH

#include <cstdio>
#include <string>

#include "logging.hh"

namespace fafnir
{

/** Trace categories (a bitmask). */
enum class DebugFlag : unsigned
{
    Dram = 1u << 0,
    Tree = 1u << 1,
    Host = 1u << 2,
    Spmv = 1u << 3,
    Controller = 1u << 4,
    Serving = 1u << 5,
};

/** Runtime debug-flag registry. */
class DebugFlags
{
  public:
    static DebugFlags &instance();

    void enable(DebugFlag flag) { mask_ |= static_cast<unsigned>(flag); }
    void disable(DebugFlag flag)
    {
        mask_ &= ~static_cast<unsigned>(flag);
    }
    void clear() { mask_ = 0; }

    bool
    enabled(DebugFlag flag) const
    {
        return (mask_ & static_cast<unsigned>(flag)) != 0;
    }

    /** Parse a comma-separated list ("dram,tree"); unknown names fatal. */
    void enableFromString(const std::string &list);

  private:
    DebugFlags();

    unsigned mask_ = 0;
};

} // namespace fafnir

/** Emit a trace line when @p flag is enabled. */
#define FAFNIR_DPRINTF(flag, ...)                                          \
    do {                                                                   \
        if (::fafnir::DebugFlags::instance().enabled(                      \
                ::fafnir::DebugFlag::flag)) {                              \
            std::fprintf(stderr, "%s: %s\n", #flag,                        \
                         ::fafnir::detail::format(__VA_ARGS__).c_str());   \
        }                                                                  \
    } while (0)

#endif // FAFNIR_COMMON_DEBUG_HH
