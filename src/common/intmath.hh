/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef FAFNIR_COMMON_INTMATH_HH
#define FAFNIR_COMMON_INTMATH_HH

#include <cstdint>

#include "logging.hh"

namespace fafnir
{

/** True if @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(@p n); @p n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned result = 0;
    while (n >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2(@p n); @p n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return isPowerOf2(n) ? floorLog2(n) : floorLog2(n) + 1;
}

/** Ceiling of @p a / @p b for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p n up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    const std::uint64_t mask = (last - first >= 63)
        ? ~std::uint64_t(0)
        : ((std::uint64_t(1) << (last - first + 1)) - 1);
    return (value >> first) & mask;
}

} // namespace fafnir

#endif // FAFNIR_COMMON_INTMATH_HH
