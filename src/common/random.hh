/**
 * @file
 * Deterministic random-number utilities.
 *
 * All stochastic behaviour in the simulator flows through Rng so that
 * experiments are reproducible from a single seed. The Zipfian sampler is
 * the workhorse of the embedding-batch generators: the "hot fraction" of
 * embedding rows that recur within a batch (Figures 3 and 15 of the paper)
 * is controlled entirely by its skew parameter.
 */

#ifndef FAFNIR_COMMON_RANDOM_HH
#define FAFNIR_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace fafnir
{

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna). Fast, good
 * statistical quality, and trivially seedable — no global state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = nextBelow(i);
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    std::uint64_t state_[4];
};

/**
 * Zipfian sampler over [0, n) with exponent @p skew, using the rejection
 * method of Gray et al. (as popularized by YCSB). skew = 0 degenerates to
 * uniform; typical recommendation-trace skews are 0.6–1.1.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double skew);

    /** Draw one item; items near 0 are the hottest. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t population() const { return n_; }
    double skew() const { return skew_; }

  private:
    std::uint64_t n_;
    double skew_;
    double zetan_;
    double theta_;
    double alpha_;
    double eta_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_RANDOM_HH
