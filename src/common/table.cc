/**
 * @file
 * Implementation of the ASCII table printer.
 */

#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace fafnir
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    FAFNIR_ASSERT(rows_.empty(), "setHeader after rows were added");
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    FAFNIR_ASSERT(header_.empty() || row.size() == header_.size(),
                  "row width ", row.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        widths.resize(std::max(widths.size(), row.size()), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cell << " | ";
        }
        os << '\n';
    };

    std::size_t total = 4;
    for (auto w : widths)
        total += w + 3;

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        print_row(header_);
        os << std::string(total - 4, '-') << '\n';
    }
    for (const auto &row : rows_)
        print_row(row);
    os.flush();
}

} // namespace fafnir
