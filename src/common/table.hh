/**
 * @file
 * Aligned ASCII table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures.
 */

#ifndef FAFNIR_COMMON_TABLE_HH
#define FAFNIR_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace fafnir
{

/** Column-aligned text table with a header row and optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Define the column headers; must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; cell count must match the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format heterogeneous cells. */
    template <typename... Cells>
    void
    row(Cells &&...cells)
    {
        addRow({toCell(std::forward<Cells>(cells))...});
    }

    /** Render the table. */
    void print(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format a number with @p digits fractional digits. */
    static std::string num(double value, int digits = 2);

  private:
    static std::string toCell(const std::string &s) { return s; }
    static std::string toCell(const char *s) { return s; }
    static std::string toCell(double v) { return num(v); }
    static std::string toCell(float v) { return num(v); }

    template <typename T>
        requires std::is_integral_v<T>
    static std::string
    toCell(T v)
    {
        return std::to_string(v);
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_TABLE_HH
