/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   — something may work but not as well as it should.
 * inform() — normal status output.
 */

#ifndef FAFNIR_COMMON_LOGGING_HH
#define FAFNIR_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fafnir
{

/** Severity of a log message. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/**
 * Global log verbosity control. Messages below the threshold are dropped.
 */
class Logger
{
  public:
    /** Returns the process-wide logger. */
    static Logger &instance();

    /** Emit a message at the given level; panic/fatal do not return. */
    [[gnu::cold]] void log(LogLevel level, const std::string &message,
                           const char *file, int line);

    /** Set the minimum level that is printed (default: Inform). */
    void setThreshold(LogLevel level) { threshold_ = level; }
    LogLevel threshold() const { return threshold_; }

    /**
     * Abort instead of exit on fatal() — useful under death tests.
     * Panic always aborts.
     */
    void setAbortOnFatal(bool abort_on_fatal)
    {
        abortOnFatal_ = abort_on_fatal;
    }

  private:
    Logger() = default;

    LogLevel threshold_ = LogLevel::Inform;
    bool abortOnFatal_ = false;
};

namespace detail
{

/** Build a message from stream-formattable parts. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

namespace logging
{

/**
 * Count-based token bucket for rate-limited warnings. Deliberately
 * clock-free: a bucket starts with @p capacity tokens, every allowed
 * call spends one, and one token refills per @p refillEvery suppressed
 * calls — so the decision sequence is a pure function of the call
 * count and identical across runs and machines.
 */
class TokenBucket
{
  public:
    explicit TokenBucket(std::uint64_t capacity = 1,
                         std::uint64_t refillEvery = 100)
        : capacity_(capacity ? capacity : 1),
          refillEvery_(refillEvery ? refillEvery : 1),
          tokens_(capacity_)
    {}

    /** Spend a token if one is available; count the call either way. */
    bool
    allow()
    {
        if (tokens_ > 0) {
            --tokens_;
            ++allowed_;
            return true;
        }
        ++suppressed_;
        if (++sinceRefill_ >= refillEvery_) {
            sinceRefill_ = 0;
            if (tokens_ < capacity_)
                ++tokens_;
        }
        return false;
    }

    std::uint64_t allowed() const { return allowed_; }
    std::uint64_t suppressed() const { return suppressed_; }
    std::uint64_t tokens() const { return tokens_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t refillEvery_;
    std::uint64_t tokens_;
    std::uint64_t sinceRefill_ = 0;
    std::uint64_t allowed_ = 0;
    std::uint64_t suppressed_ = 0;
};

/**
 * Should the warning identified by @p site be emitted this time?
 * Each distinct site string owns one process-wide TokenBucket
 * (created on first use with @p capacity / @p refillEvery); suppressed
 * counts are flushed to stderr at process exit so a rate-limited
 * warning can never vanish without trace. Usage:
 *
 *     if (logging::warnEvery("memsystem.slow_read"))
 *         FAFNIR_WARN("read took ", ns, "ns");
 */
bool warnEvery(const std::string &site, std::uint64_t capacity = 1,
               std::uint64_t refillEvery = 100);

/** Suppressed-call count of @p site so far (0 for unknown sites). */
std::uint64_t warnEverySuppressed(const std::string &site);

} // namespace logging

} // namespace fafnir

/** Report an unrecoverable internal error and abort. */
#define FAFNIR_PANIC(...)                                                   \
    do {                                                                    \
        ::fafnir::Logger::instance().log(                                   \
            ::fafnir::LogLevel::Panic,                                      \
            ::fafnir::detail::format(__VA_ARGS__), __FILE__, __LINE__);    \
        ::std::abort();                                                     \
    } while (0)

/** Report an unrecoverable user error and exit. */
#define FAFNIR_FATAL(...)                                                   \
    do {                                                                    \
        ::fafnir::Logger::instance().log(                                   \
            ::fafnir::LogLevel::Fatal,                                      \
            ::fafnir::detail::format(__VA_ARGS__), __FILE__, __LINE__);    \
        ::std::abort();                                                     \
    } while (0)

/** Report a suspicious-but-survivable condition. */
#define FAFNIR_WARN(...)                                                    \
    ::fafnir::Logger::instance().log(                                       \
        ::fafnir::LogLevel::Warn,                                           \
        ::fafnir::detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Report normal operating status. */
#define FAFNIR_INFORM(...)                                                  \
    ::fafnir::Logger::instance().log(                                       \
        ::fafnir::LogLevel::Inform,                                         \
        ::fafnir::detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Panic when @p cond is false. Cheap enough to keep in release builds. */
#define FAFNIR_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            FAFNIR_PANIC("assertion failed: " #cond " ",                    \
                         ::fafnir::detail::format("" __VA_ARGS__));         \
        }                                                                   \
    } while (0)

#endif // FAFNIR_COMMON_LOGGING_HH
