/**
 * @file
 * Implementation of the process-wide logger.
 */

#include "logging.hh"

#include <cstdio>
#include <mutex>
#include <vector>

namespace fafnir
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

namespace logging
{

namespace
{

struct Site
{
    std::string name;
    TokenBucket bucket;
};

struct SiteRegistry
{
    std::mutex mutex;
    std::vector<Site> sites;

    Site &
    get(const std::string &name, std::uint64_t capacity,
        std::uint64_t refillEvery)
    {
        for (Site &s : sites)
            if (s.name == name)
                return s;
        sites.push_back({name, TokenBucket(capacity, refillEvery)});
        return sites.back();
    }
};

SiteRegistry *g_registry = nullptr;

void
flushSuppressed()
{
    if (g_registry == nullptr)
        return;
    std::lock_guard<std::mutex> lock(g_registry->mutex);
    for (const Site &s : g_registry->sites) {
        if (s.bucket.suppressed() > 0) {
            std::fprintf(stderr,
                         "warn: %s: %llu similar warning(s) suppressed\n",
                         s.name.c_str(),
                         static_cast<unsigned long long>(
                             s.bucket.suppressed()));
        }
    }
    std::fflush(stderr);
}

/** Leaked on purpose: the atexit flush may run after static
 *  destructors would have torn a plain static down. */
SiteRegistry &
registry()
{
    static SiteRegistry *r = [] {
        g_registry = new SiteRegistry;
        std::atexit(flushSuppressed);
        return g_registry;
    }();
    return *r;
}

} // namespace

bool
warnEvery(const std::string &site, std::uint64_t capacity,
          std::uint64_t refillEvery)
{
    SiteRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.get(site, capacity, refillEvery).bucket.allow();
}

std::uint64_t
warnEverySuppressed(const std::string &site)
{
    SiteRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const Site &s : reg.sites)
        if (s.name == site)
            return s.bucket.suppressed();
    return 0;
}

} // namespace logging

void
Logger::log(LogLevel level, const std::string &message, const char *file,
            int line)
{
    const bool is_error =
        level == LogLevel::Panic || level == LogLevel::Fatal;
    if (!is_error && static_cast<int>(level) > static_cast<int>(threshold_))
        return;

    if (is_error) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     message.c_str(), file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", levelName(level), message.c_str());
    }
    std::fflush(stderr);
    // Termination for panic/fatal happens in the macro so the compiler can
    // see the [[noreturn]] control flow at the call site.
}

} // namespace fafnir
