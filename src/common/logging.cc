/**
 * @file
 * Implementation of the process-wide logger.
 */

#include "logging.hh"

#include <cstdio>

namespace fafnir
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &message, const char *file,
            int line)
{
    const bool is_error =
        level == LogLevel::Panic || level == LogLevel::Fatal;
    if (!is_error && static_cast<int>(level) > static_cast<int>(threshold_))
        return;

    if (is_error) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     message.c_str(), file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", levelName(level), message.c_str());
    }
    std::fflush(stderr);
    // Termination for panic/fatal happens in the macro so the compiler can
    // see the [[noreturn]] control flow at the call site.
}

} // namespace fafnir
