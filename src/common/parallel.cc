/**
 * @file
 * parallelFor implementation: atomic work claiming over std::thread.
 */

#include "parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace fafnir
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    const std::size_t workers =
        std::min<std::size_t>(jobs, n);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto work = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t)
        pool.emplace_back(work);
    work(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace fafnir
