/**
 * @file
 * parallelFor (atomic work claiming over std::thread) and the
 * persistent WorkerPool + ScratchArena behind the host prepare pool.
 */

#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

#include "common/logging.hh"

namespace fafnir
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    const std::size_t workers =
        std::min<std::size_t>(jobs, n);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto work = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t)
        pool.emplace_back(work);
    work(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

// ---- ScratchArena -----------------------------------------------------

void *
ScratchArena::allocBytes(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    if (!blocks_.empty()) {
        Block &cur = blocks_.back();
        const std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= cur.size) {
            cursor_ = aligned + bytes;
            return cur.data.get() + aligned;
        }
    }
    // Grow geometrically; the outgrown block stays alive until reset()
    // so pointers handed out earlier in this cycle never dangle.
    const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t want =
        std::max<std::size_t>({bytes + align, last * 2, 4096});
    Block block;
    block.data = std::make_unique<unsigned char[]>(want);
    block.size = want;
    blocks_.push_back(std::move(block));
    const auto base = reinterpret_cast<std::uintptr_t>(
        blocks_.back().data.get());
    const std::size_t skew = (align - base % align) % align;
    cursor_ = skew + bytes;
    return blocks_.back().data.get() + skew;
}

void
ScratchArena::reset()
{
    if (blocks_.size() > 1) {
        // Consolidate the high-water mark into one block so the next
        // cycle bump-allocates without chaining.
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        blocks_.clear();
        Block block;
        block.data = std::make_unique<unsigned char[]>(total);
        block.size = total;
        blocks_.push_back(std::move(block));
    }
    cursor_ = 0;
}

std::size_t
ScratchArena::capacityBytes() const
{
    std::size_t total = 0;
    for (const Block &b : blocks_)
        total += b.size;
    return total;
}

// ---- WorkerPool -------------------------------------------------------

struct WorkerPool::TaskHandle::State
{
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr error;
};

struct WorkerPool::QueueItem
{
    Task fn;
    std::shared_ptr<TaskHandle::State> state;
};

WorkerPool::WorkerPool(unsigned threads)
{
    FAFNIR_ASSERT(threads >= 1, "WorkerPool needs >= 1 thread");
    scratch_.resize(threads + 1); // slot 0 belongs to the caller
    threads_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        threads_.emplace_back([this, t] { workerMain(t + 1); });
}

WorkerPool::~WorkerPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::workerMain(unsigned slot)
{
    (void)slot;
    for (;;) {
        QueueItem item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            item.fn();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(item.state->mutex);
            item.state->error = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(item.state->mutex);
            item.state->done = true;
        }
        item.state->done_cv.notify_all();
    }
}

WorkerPool::TaskHandle
WorkerPool::submit(Task task)
{
    TaskHandle handle;
    handle.state_ = std::make_shared<TaskHandle::State>();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        FAFNIR_ASSERT(!stopping_,
                      "submit() on a WorkerPool being destroyed");
        queue_.push_back({std::move(task), handle.state_});
    }
    wake_.notify_one();
    return handle;
}

void
WorkerPool::wait(TaskHandle &handle)
{
    if (!handle.state_)
        return;
    std::shared_ptr<TaskHandle::State> state = std::move(handle.state_);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] { return state->done; });
    if (state->error)
        std::rethrow_exception(state->error);
}

void
WorkerPool::runIndexed(
    std::size_t n, const std::function<void(std::size_t, unsigned)> &body)
{
    if (n == 0)
        return;
    if (n == 1 || threads() == 0) {
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }

    std::atomic<std::size_t> next{0};
    // First failure by claim order wins, like parallelFor.
    std::atomic<std::size_t> error_index{
        std::numeric_limits<std::size_t>::max()};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto drain = [&](unsigned slot) {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i, slot);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (i < error_index.load(std::memory_order_relaxed)) {
                    error_index.store(i, std::memory_order_relaxed);
                    error = std::current_exception();
                }
            }
        }
    };

    const unsigned helpers = static_cast<unsigned>(
        std::min<std::size_t>(threads(), n - 1));
    std::vector<TaskHandle> handles;
    handles.reserve(helpers);
    for (unsigned t = 0; t < helpers; ++t)
        handles.push_back(submit([&drain, slot = t + 1] { drain(slot); }));
    drain(0); // the calling thread is slot 0
    for (TaskHandle &h : handles)
        wait(h);

    if (error)
        std::rethrow_exception(error);
}

} // namespace fafnir
