/**
 * @file
 * Data-parallel loops and a persistent worker pool.
 *
 * Two layers of parallelism live here:
 *
 *  - parallelFor: a one-shot loop for independent sweep points. The
 *    ablation harnesses and run_all.sh evaluate many self-contained
 *    simulations (own EventQueue, own memory system, own engine) whose
 *    only interaction is the order their rows are printed. Workers
 *    claim indices from an atomic counter, every index writes into its
 *    own pre-sized result slot, and the caller emits rows in index
 *    order afterwards — so the output is bit-identical to a serial run
 *    at any job count.
 *
 *  - WorkerPool: a persistent pool of threads for per-request work
 *    (the host prepare pool). One-shot spawning costs a thread create
 *    and join per call, which swamps a sub-millisecond prepare;
 *    WorkerPool keeps its threads parked on a condition variable, hands
 *    out TaskHandles for individual submissions, and owns one
 *    ScratchArena per worker slot so per-task temporaries (dedup hash
 *    slots, user lists) reuse capacity across requests instead of
 *    reallocating.
 *
 * Not for code that touches shared mutable state: the telemetry
 * TraceSink and the fault plan's RNG streams in particular are not
 * thread-safe, so harnesses force jobs/workers to 1 when either is
 * installed (bench::clampParallelism).
 */

#ifndef FAFNIR_COMMON_PARALLEL_HH
#define FAFNIR_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fafnir
{

/** Hardware concurrency, at least 1 (the default for --jobs/-j). */
unsigned defaultJobs();

/**
 * Invoke body(i) for every i in [0, n), on min(jobs, n) threads.
 * jobs <= 1 runs inline with no thread machinery. If any invocation
 * throws, the first exception (by claim order) is rethrown in the
 * caller after all workers stop; remaining indices are abandoned.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * A bump allocator for per-task temporaries. alloc() hands out
 * trivially-destructible storage from one growing block; reset()
 * rewinds the cursor without freeing, so a steady-state request stream
 * stops allocating once the high-water mark is reached. Pointers from
 * one alloc cycle stay valid until the next reset().
 */
class ScratchArena
{
  public:
    /** @p count default-constructible, trivially-destructible Ts with
     *  unspecified contents — callers overwrite what they read. */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "ScratchArena never runs destructors");
        return static_cast<T *>(
            allocBytes(count * sizeof(T), alignof(T)));
    }

    /** Rewind, keeping capacity. Invalidates outstanding pointers. */
    void reset();

    /** Total bytes owned (the high-water mark after a reset cycle). */
    std::size_t capacityBytes() const;

  private:
    void *allocBytes(std::size_t bytes, std::size_t align);

    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    /** Earlier, outgrown blocks stay alive until reset() so pointers
     *  handed out before a growth never dangle mid-cycle. */
    std::vector<Block> blocks_;
    std::size_t cursor_ = 0;
};

/**
 * A persistent pool of parked worker threads.
 *
 * submit() enqueues a task and returns a TaskHandle; wait() blocks on
 * it and rethrows the task's exception in the waiter. runIndexed() is
 * the barrier convenience for data-parallel phases: body(i, slot) runs
 * for every i in [0, n) with the calling thread participating as slot
 * 0 and pool threads as slots 1..threads(); the first exception (by
 * claim order) is rethrown after every index is settled. `slot`
 * identifies which scratch arena the invocation may use — arenas are
 * per slot, so concurrent bodies never share one.
 *
 * The destructor drains every queued task (completing, not
 * abandoning), then joins. Tasks must not submit to the pool being
 * destroyed.
 */
class WorkerPool
{
  public:
    using Task = std::function<void()>;

    /** Completion ticket for one submitted task. */
    class TaskHandle
    {
      public:
        TaskHandle() = default;
        /** True until wait() consumes it. */
        bool pending() const { return state_ != nullptr; }

      private:
        friend class WorkerPool;
        struct State;
        std::shared_ptr<State> state_;
    };

    /** @p threads parked OS threads (>= 1). */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Pool threads (excluding the caller slot). */
    unsigned threads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Worker slots usable by runIndexed bodies: threads() + 1. */
    unsigned slots() const { return threads() + 1; }

    /** Enqueue @p task; a parked worker picks it up. */
    TaskHandle submit(Task task);

    /**
     * Block until @p handle's task completes; rethrows the task's
     * exception here. No-op on a default-constructed or already-waited
     * handle.
     */
    void wait(TaskHandle &handle);

    /** Barrier loop: body(i, slot) for every i in [0, n); returns when
     *  all indices ran. First exception by claim order is rethrown. */
    void runIndexed(std::size_t n,
                    const std::function<void(std::size_t, unsigned)> &body);

    /** The arena owned by @p slot (0 = caller, 1.. = pool threads). */
    ScratchArena &
    scratch(unsigned slot)
    {
        return scratch_[slot];
    }

  private:
    struct QueueItem;

    void workerMain(unsigned slot);

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<QueueItem> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
    std::vector<ScratchArena> scratch_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_PARALLEL_HH
