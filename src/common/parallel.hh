/**
 * @file
 * Minimal data-parallel loop for independent sweep points.
 *
 * The ablation harnesses and run_all.sh evaluate many self-contained
 * simulations (own EventQueue, own memory system, own engine) whose
 * only interaction is the order their rows are printed. parallelFor
 * runs such a sweep across threads: workers claim indices from an
 * atomic counter, every index writes into its own pre-sized result
 * slot, and the caller emits rows in index order afterwards — so the
 * output is bit-identical to a serial run at any job count.
 *
 * Not for code that touches shared mutable state: the telemetry
 * TraceSink in particular is not thread-safe, so harnesses force
 * jobs=1 when a trace is being recorded.
 */

#ifndef FAFNIR_COMMON_PARALLEL_HH
#define FAFNIR_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace fafnir
{

/** Hardware concurrency, at least 1 (the default for --jobs/-j). */
unsigned defaultJobs();

/**
 * Invoke body(i) for every i in [0, n), on min(jobs, n) threads.
 * jobs <= 1 runs inline with no thread machinery. If any invocation
 * throws, the first exception (by claim order) is rethrown in the
 * caller after all workers stop; remaining indices are abandoned.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace fafnir

#endif // FAFNIR_COMMON_PARALLEL_HH
