/**
 * @file
 * Lightweight statistics package.
 *
 * Every model component owns named counters/scalars registered into a
 * StatGroup; benches and examples dump groups as aligned text, JSON, or
 * CSV. This is a deliberately small subset of gem5's stats framework:
 * scalar counters, distributions with percentiles, and formulas
 * evaluated at dump time. A process-wide StatRegistry owns groups so a
 * whole run's statistics can be exported as one machine-readable
 * artifact (`--stats-json` / `--stats-csv` in the harnesses).
 */

#ifndef FAFNIR_COMMON_STATS_HH
#define FAFNIR_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace fafnir
{

class JsonWriter;

/** A named monotonic counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running mean/min/max plus percentiles over a stream of samples.
 *
 * Moments are exact. Percentiles are exact while the sample count stays
 * within the reservoir (8192 entries) and an unbiased deterministic
 * reservoir approximation beyond it, which keeps memory bounded for
 * multi-million-sample runs while staying reproducible.
 *
 * Reservoir vs. log buckets: this reservoir keeps exact sample values,
 * so small-count percentiles are exact and a single-sample window
 * reports that sample identically at every percentile — but two
 * reservoirs cannot be merged (the sampled subsets are not composable)
 * and accuracy decays stochastically past 8192 samples. The windowed
 * telemetry engine (telemetry/timeseries.hh LogHistogram) makes the
 * opposite trade: log-bucketed counts with a bounded 6.25% quantile
 * overestimate, mergeable bit-identically across windows and replicas.
 * Use a Distribution for whole-run summaries, log buckets wherever
 * windows or replica streams must compose.
 *
 * Empty distributions report NaN mean/min/max/percentiles — serialized
 * as JSON null and an empty CSV cell — so "no samples" is
 * distinguishable from "samples averaging zero" in every export format.
 */
class Distribution
{
  public:
    void sample(double v);

    std::uint64_t count() const { return count_; }
    /** NaN when no samples have been recorded. */
    double mean() const;
    /** NaN when no samples have been recorded. */
    double min() const;
    /** NaN when no samples have been recorded. */
    double max() const;
    double sum() const { return sum_; }

    /**
     * Nearest-rank percentile, @p p in [0, 100]. NaN when empty.
     * percentile(50) of {1..100} is 50; percentile(99) is 99.
     */
    double percentile(double p) const;
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    void reset();

  private:
    /** Reservoir capacity: exact percentiles up to this many samples. */
    static constexpr std::size_t kReservoirSize = 8192;

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> reservoir_;
    /** Deterministic LCG state for reservoir replacement. */
    std::uint64_t rngState_ = 0x9e3779b97f4a7c15ull;
};

/**
 * A group of named statistics belonging to one component. Values are
 * registered by reference; the group never owns them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &stat, const Counter &counter,
                    const std::string &desc = "");
    void addDistribution(const std::string &stat, const Distribution &dist,
                         const std::string &desc = "");
    /** A value computed at dump time from other stats. */
    void addFormula(const std::string &stat, std::function<double()> fn,
                    const std::string &desc = "");

    /** Write "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;

    /** Emit this group as one JSON object (distributions expand to
     *  {count, mean, min, max, sum, p50, p95, p99}). */
    void writeJson(JsonWriter &json) const;

    /** Append "group.stat,value" CSV rows (no header). */
    void writeCsv(std::ostream &os) const;

    const std::string &name() const { return name_; }
    std::size_t size() const { return entries_.size(); }

  private:
    enum class Kind
    {
        Counter,
        Distribution,
        Formula,
    };

    struct Entry
    {
        std::string name;
        Kind kind;
        const Counter *counter = nullptr;
        const Distribution *dist = nullptr;
        std::function<double()> formula;
        std::string desc;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

/**
 * Process-wide owner of StatGroups.
 *
 * Components create (or look up) their group with group(); harnesses
 * serialize every registered group at the end of a run. Groups reference
 * caller-owned counters, so a harness that registers stats for
 * run-scoped objects must dump and clear() before those objects die.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** The process-wide registry used by the CLI harnesses. */
    static StatRegistry &instance();

    /** Get-or-create the group named @p name (registration order kept). */
    StatGroup &group(const std::string &name);

    bool has(const std::string &name) const;
    std::size_t size() const { return groups_.size(); }

    /** Aligned-text dump of every group, in registration order. */
    void dump(std::ostream &os) const;

    /** One JSON object: {"group": {"stat": value | distribution}}. */
    void dumpJson(std::ostream &os) const;

    /** Emit the same object into an in-progress JSON document. */
    void writeJson(JsonWriter &json) const;

    /** CSV with a "stat,value" header; distributions are flattened. */
    void dumpCsv(std::ostream &os) const;

    /** Drop all groups (their referenced counters are untouched). */
    void clear() { groups_.clear(); }

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_STATS_HH
