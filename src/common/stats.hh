/**
 * @file
 * Lightweight statistics package.
 *
 * Every model component owns named counters/scalars registered into a
 * StatGroup; benches and examples dump groups as aligned text. This is a
 * deliberately small subset of gem5's stats framework: scalar counters,
 * averages, histograms, and formulas evaluated at dump time.
 */

#ifndef FAFNIR_COMMON_STATS_HH
#define FAFNIR_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fafnir
{

/** A named monotonic counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class Distribution
{
  public:
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A group of named statistics belonging to one component. Values are
 * registered by reference; the group never owns them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &stat, const Counter &counter,
                    const std::string &desc = "");
    void addDistribution(const std::string &stat, const Distribution &dist,
                         const std::string &desc = "");
    /** A value computed at dump time from other stats. */
    void addFormula(const std::string &stat, std::function<double()> fn,
                    const std::string &desc = "");

    /** Write "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        std::string name;
        std::function<std::string()> render;
        std::string desc;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_STATS_HH
