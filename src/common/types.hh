/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef FAFNIR_COMMON_TYPES_HH
#define FAFNIR_COMMON_TYPES_HH

#include <cstdint>

namespace fafnir
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock edges of some clocked object. */
using Cycles = std::uint64_t;

/** Physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Identifier of an embedding vector: (table, row) flattened by the host. */
using IndexId = std::uint32_t;

/** Identifier of a query within a batch. */
using QueryId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick MaxTick = ~Tick(0);

/** Picoseconds per common time units. */
inline constexpr Tick kTicksPerNs = 1000;
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert a frequency in MHz to a clock period in ticks (ps). */
constexpr Tick
periodFromMhz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz);
}

} // namespace fafnir

#endif // FAFNIR_COMMON_TYPES_HH
