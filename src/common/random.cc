/**
 * @file
 * Implementation of the RNG and the Zipfian sampler.
 */

#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace fafnir
{

namespace
{

/** splitmix64 — used only to expand the user seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : state_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    FAFNIR_ASSERT(bound != 0, "nextBelow(0)");
    // Lemire's nearly-divisionless bounded sampling would be overkill here;
    // 128-bit multiply-shift keeps bias below 2^-64.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    FAFNIR_ASSERT(lo <= hi, "nextRange lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double skew)
    : n_(n), skew_(skew)
{
    FAFNIR_ASSERT(n_ > 0, "Zipfian population must be nonzero");
    FAFNIR_ASSERT(skew_ >= 0.0, "Zipfian skew must be non-negative");
    theta_ = skew_;
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = (theta_ == 1.0) ? 0.0 : 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianGenerator::sample(Rng &rng) const
{
    if (skew_ == 0.0)
        return rng.nextBelow(n_);

    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;

    double rank;
    if (theta_ == 1.0) {
        // Harmonic case: invert the continuous approximation directly.
        rank = std::exp(u * std::log(static_cast<double>(n_)));
    } else {
        rank = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    }
    auto item = static_cast<std::uint64_t>(rank);
    return item >= n_ ? n_ - 1 : item;
}

} // namespace fafnir
