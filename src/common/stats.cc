/**
 * @file
 * Implementation of the statistics package.
 */

#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "json.hh"
#include "logging.hh"

namespace fafnir
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;

    if (reservoir_.size() < kReservoirSize) {
        reservoir_.push_back(v);
        return;
    }
    // Vitter's algorithm R with a deterministic LCG: keep each of the
    // count_ samples with probability kReservoirSize / count_.
    rngState_ = rngState_ * 6364136223846793005ull +
                1442695040888963407ull;
    const std::uint64_t slot = rngState_ % count_;
    if (slot < kReservoirSize)
        reservoir_[slot] = v;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_)
                  : std::numeric_limits<double>::quiet_NaN();
}

double
Distribution::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
Distribution::max() const
{
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double
Distribution::percentile(double p) const
{
    FAFNIR_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (reservoir_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sorted(reservoir_);
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: the smallest value with at least p% of samples at or
    // below it.
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    reservoir_.clear();
    rngState_ = 0x9e3779b97f4a7c15ull;
}

void
StatGroup::addCounter(const std::string &stat, const Counter &counter,
                      const std::string &desc)
{
    Entry entry{stat, Kind::Counter, &counter, nullptr, {}, desc};
    entries_.push_back(std::move(entry));
}

void
StatGroup::addDistribution(const std::string &stat, const Distribution &dist,
                           const std::string &desc)
{
    Entry entry{stat, Kind::Distribution, nullptr, &dist, {}, desc};
    entries_.push_back(std::move(entry));
}

void
StatGroup::addFormula(const std::string &stat, std::function<double()> fn,
                      const std::string &desc)
{
    Entry entry{stat, Kind::Formula, nullptr, nullptr, std::move(fn),
                desc};
    entries_.push_back(std::move(entry));
}

namespace
{

std::string
renderDistribution(const Distribution &dist)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (dist.count() == 0) {
        os << "- (n=0)";
        return os.str();
    }
    os << dist.mean() << " (n=" << dist.count() << ", min=" << dist.min()
       << ", max=" << dist.max() << ", p50=" << dist.p50()
       << ", p95=" << dist.p95() << ", p99=" << dist.p99() << ")";
    return os.str();
}

std::string
renderFormula(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << v;
    return os.str();
}

} // namespace

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &entry : entries_) {
        os << name_ << '.' << entry.name << ' ';
        switch (entry.kind) {
          case Kind::Counter:
            os << entry.counter->value();
            break;
          case Kind::Distribution:
            os << renderDistribution(*entry.dist);
            break;
          case Kind::Formula:
            os << renderFormula(entry.formula());
            break;
        }
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
}

void
StatGroup::writeJson(JsonWriter &json) const
{
    json.beginObject();
    for (const auto &entry : entries_) {
        json.key(entry.name);
        switch (entry.kind) {
          case Kind::Counter:
            json.value(entry.counter->value());
            break;
          case Kind::Distribution: {
            const Distribution &d = *entry.dist;
            json.beginObject();
            json.member("count", d.count());
            json.member("mean", d.mean());
            json.member("min", d.min()); // NaN -> null when empty
            json.member("max", d.max());
            json.member("sum", d.sum());
            json.member("p50", d.p50());
            json.member("p95", d.p95());
            json.member("p99", d.p99());
            json.endObject();
            break;
          }
          case Kind::Formula:
            json.value(entry.formula());
            break;
        }
    }
    json.endObject();
}

void
StatGroup::writeCsv(std::ostream &os) const
{
    auto row = [&](const std::string &stat, double v) {
        os << name_ << '.' << stat << ',';
        if (std::isfinite(v))
            os << v;
        os << '\n';
    };
    for (const auto &entry : entries_) {
        switch (entry.kind) {
          case Kind::Counter:
            os << name_ << '.' << entry.name << ','
               << entry.counter->value() << '\n';
            break;
          case Kind::Distribution: {
            const Distribution &d = *entry.dist;
            os << name_ << '.' << entry.name << ".count," << d.count()
               << '\n';
            row(entry.name + ".mean", d.mean());
            row(entry.name + ".min", d.min());
            row(entry.name + ".max", d.max());
            row(entry.name + ".p50", d.p50());
            row(entry.name + ".p95", d.p95());
            row(entry.name + ".p99", d.p99());
            break;
          }
          case Kind::Formula:
            row(entry.name, entry.formula());
            break;
        }
    }
}

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

StatGroup &
StatRegistry::group(const std::string &name)
{
    for (const auto &g : groups_) {
        if (g->name() == name)
            return *g;
    }
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const auto &g : groups_) {
        if (g->name() == name)
            return true;
    }
    return false;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &g : groups_)
        g->dump(os);
}

void
StatRegistry::writeJson(JsonWriter &json) const
{
    json.beginObject();
    for (const auto &g : groups_) {
        json.key(g->name());
        g->writeJson(json);
    }
    json.endObject();
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter json(os);
    writeJson(json);
    os << '\n';
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &g : groups_)
        g->writeCsv(os);
}

} // namespace fafnir
