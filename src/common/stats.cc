/**
 * @file
 * Implementation of the statistics package.
 */

#include "stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace fafnir
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
StatGroup::addCounter(const std::string &stat, const Counter &counter,
                      const std::string &desc)
{
    entries_.push_back({stat,
                        [&counter] { return std::to_string(counter.value()); },
                        desc});
}

void
StatGroup::addDistribution(const std::string &stat, const Distribution &dist,
                           const std::string &desc)
{
    entries_.push_back(
        {stat,
         [&dist] {
             std::ostringstream os;
             os << std::fixed << std::setprecision(2) << dist.mean()
                << " (n=" << dist.count() << ", min=" << dist.min()
                << ", max=" << dist.max() << ")";
             return os.str();
         },
         desc});
}

void
StatGroup::addFormula(const std::string &stat, std::function<double()> fn,
                      const std::string &desc)
{
    entries_.push_back({stat,
                        [fn = std::move(fn)] {
                            std::ostringstream os;
                            os << std::fixed << std::setprecision(4) << fn();
                            return os.str();
                        },
                        desc});
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &entry : entries_) {
        os << name_ << '.' << entry.name << ' ' << entry.render();
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
}

} // namespace fafnir
