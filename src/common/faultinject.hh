/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a process-wide, seed-deterministic schedule of injected
 * faults. Hook points across the simulator (DRAM latency/stalls, event
 * queue perturbations, PE backpressure, value-pool exhaustion, query
 * corruption) opt in by name: each site asks the installed plan whether
 * its hook fires *this* time, and the plan answers from a per-hook
 * xoshiro256** stream derived from a single user seed. No wall-clock
 * time and no global rand() are involved, so a (spec, seed) pair always
 * produces a bit-identical fault schedule — reruns of a faulty
 * experiment reproduce the same injected faults in the same order.
 *
 * Sites fetch the installed plan with fault::plan(); when no plan is
 * installed the call inlines to one load + branch (the same pattern as
 * telemetry::sink()), so the hooks are effectively free in production
 * runs. Each hook keeps checked/fired counters that harnesses register
 * as the "faults" StatGroup, making every injected fault visible in
 * --report / --stats-json artifacts.
 *
 * Fault spec grammar (the --faults flag):
 *
 *     spec     := entry ("," entry)*
 *     entry    := hook ":" rate [":" magnitude]
 *     hook     := dram_latency | dram_stall | event_delay | event_drop
 *               | event_dup | pe_backpressure | pool_exhaust
 *               | query_malformed | query_oversized | query_dup_index
 *     rate     := probability in [0, 1] that the hook fires per check
 *     magnitude:= hook-specific severity (see kHookInfo defaults)
 *
 * e.g. --faults dram_latency:0.1,event_delay:0.05 --fault-seed 7
 *
 * See docs/ROBUSTNESS.md for hook-point placement and semantics.
 */

#ifndef FAFNIR_COMMON_FAULTINJECT_HH
#define FAFNIR_COMMON_FAULTINJECT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace fafnir
{

class StatGroup;

namespace fault
{

/** Every named hook point a plan can drive. */
enum class Hook : unsigned
{
    /** DRAM read completes late: magnitude = latency multiplier. */
    DramLatency,
    /** Transient command stall before issue: magnitude = stall ns. */
    DramStall,
    /** Scheduled event delivered late: magnitude = max jitter ns. */
    EventDelay,
    /** One-shot callback silently dropped (never delivered). */
    EventDrop,
    /** One-shot callback delivered twice at the same tick. */
    EventDup,
    /** PE input delivery stalled: magnitude = extra PE cycles. */
    PeBackpressure,
    /** Value-buffer pool behaves as exhausted (no reuse). */
    PoolExhaust,
    /** Generated query corrupted (empty/unsorted/out-of-range). */
    QueryMalformed,
    /** Generated query inflated past any sane width: magnitude = factor. */
    QueryOversized,
    /** Generated query carries a duplicated index. */
    QueryDupIndex,

    NumHooks,
};

inline constexpr std::size_t kNumHooks =
    static_cast<std::size_t>(Hook::NumHooks);

/** The spec-grammar name of @p hook ("dram_latency", ...). */
const char *toString(Hook hook);

/** Parse a spec-grammar hook name; nullopt when unknown. */
std::optional<Hook> hookFromName(std::string_view name);

/**
 * A deterministic, seeded fault schedule.
 *
 * Each enabled hook owns an independent xoshiro256** stream expanded
 * from (seed, hook index), so enabling one hook never perturbs the
 * schedule of another and checks at different sites stay reproducible.
 * The plan is intended for single-threaded simulation runs; parallel
 * sweep harnesses force serial execution while a plan is installed.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed = 1);

    /**
     * Parse @p spec (grammar above) into a plan seeded with @p seed.
     * @return nullopt and sets @p error on a malformed spec.
     */
    static std::optional<FaultPlan> tryParse(const std::string &spec,
                                             std::uint64_t seed,
                                             std::string *error = nullptr);

    /** tryParse() that dies with a clear message on a malformed spec. */
    static FaultPlan parse(const std::string &spec, std::uint64_t seed);

    /** Arm @p hook at @p rate; magnitude defaults per hook. */
    void enable(Hook hook, double rate,
                std::optional<double> magnitude = std::nullopt);

    bool enabled(Hook hook) const
    {
        return state(hook).rate > 0.0;
    }

    /** True when at least one hook is armed. */
    bool anyEnabled() const { return armed_ != 0; }

    /**
     * Does @p hook fire this time? Counts the check; draws from the
     * hook's stream only when the hook is armed, so disabled hooks cost
     * nothing and never advance any stream. Always false while
     * suspended (the counters still advance only for armed hooks).
     */
    bool
    shouldFire(Hook hook)
    {
        HookState &st = state(hook);
        if (st.rate <= 0.0)
            return false;
        ++st.checked;
        if (suspended_ || !st.rng.nextBool(st.rate))
            return false;
        ++st.fired;
        if (fireListener_)
            fireListener_(hook);
        return true;
    }

    /**
     * Observe every fired hook (after its counter advances). The
     * telemetry layer wires the flight recorder's fault-hook trigger
     * here; common/ stays free of telemetry dependencies. The listener
     * must not call back into the plan. Pass nullptr to clear — owners
     * of short-lived listeners must clear before the listener's
     * captures die.
     */
    void
    setFireListener(std::function<void(Hook)> listener)
    {
        fireListener_ = std::move(listener);
    }

    /** Configured severity of @p hook (default when not overridden). */
    double magnitude(Hook hook) const { return state(hook).magnitude; }

    /**
     * Extra completion latency for a DRAM read whose nominal service
     * time is @p base ticks: base * (multiplier - 1) when DramLatency
     * fires, 0 otherwise.
     */
    Tick
    dramLatencyExtra(Tick base)
    {
        if (!shouldFire(Hook::DramLatency))
            return 0;
        const double mult = state(Hook::DramLatency).magnitude;
        return static_cast<Tick>(static_cast<double>(base) *
                                 (mult > 1.0 ? mult - 1.0 : 0.0));
    }

    /** Transient command-stall ticks, 0 when DramStall does not fire. */
    Tick
    dramStallTicks()
    {
        if (!shouldFire(Hook::DramStall))
            return 0;
        return static_cast<Tick>(state(Hook::DramStall).magnitude *
                                 static_cast<double>(kTicksPerNs));
    }

    /**
     * Delivery jitter for a scheduled event: uniform in
     * [1, magnitude ns] ticks when EventDelay fires, 0 otherwise.
     * Additive-only, so the queue's when >= now() invariant holds.
     */
    Tick
    eventDelayTicks()
    {
        if (!shouldFire(Hook::EventDelay))
            return 0;
        HookState &st = state(Hook::EventDelay);
        const Tick span = static_cast<Tick>(
            st.magnitude * static_cast<double>(kTicksPerNs));
        return span == 0 ? 0 : 1 + st.rng.nextBelow(span);
    }

    /** Extra PE cycles of backpressure, 0 when the hook does not fire. */
    Cycles
    peBackpressureCycles()
    {
        if (!shouldFire(Hook::PeBackpressure))
            return 0;
        return static_cast<Cycles>(state(Hook::PeBackpressure).magnitude);
    }

    /** The dedicated stream of @p hook (query-corruption shapes draw
     *  extra randomness here so firing stays schedule-stable). */
    Rng &rngOf(Hook hook) { return state(hook).rng; }

    std::uint64_t
    firedCount(Hook hook) const
    {
        return state(hook).fired.value();
    }

    std::uint64_t
    checkedCount(Hook hook) const
    {
        return state(hook).checked.value();
    }

    /** Total injections across every hook. */
    std::uint64_t totalFired() const;

    /** Total hook evaluations across every hook. */
    std::uint64_t totalChecked() const;

    /**
     * Record one event firing skipped (or suppressed) by lossy @p hook
     * on a registered Event: a drop that unscheduled one firing, or a
     * duplicate firing suppressed because its event was rescheduled
     * before the echo landed. Counts under faults.<hook>.skipped so a
     * lossy-plan run reports its effective coverage. No-op while the
     * hook is unarmed.
     */
    void noteSkippedFiring(Hook hook);

    std::uint64_t
    skippedCount(Hook hook) const
    {
        return state(hook).skipped.value();
    }

    /** Total skipped applications across every hook. */
    std::uint64_t totalSkipped() const;

    /**
     * While suspended, armed hooks never fire (and draw nothing), but
     * their checked counters still advance. Used to calibrate fault-free
     * baselines without perturbing the schedule: streams do not advance
     * while suspended, so the post-resume schedule is unchanged.
     */
    void setSuspended(bool suspended) { suspended_ = suspended; }
    bool suspended() const { return suspended_; }

    std::uint64_t seed() const { return seed_; }

    /** Canonical spec string of the armed hooks ("" when none). */
    std::string describe() const;

    /** Register per-hook checked/fired counters plus totals on @p g. */
    void registerStats(StatGroup &g) const;

  private:
    struct HookState
    {
        double rate = 0.0;
        double magnitude = 0.0;
        Counter checked;
        Counter fired;
        /** Registered-event firings skipped by a drop or suppressed
         *  duplicate (lossy hooks recover instead of warning). */
        Counter skipped;
        Rng rng;
    };

    HookState &state(Hook hook)
    {
        return hooks_[static_cast<std::size_t>(hook)];
    }
    const HookState &state(Hook hook) const
    {
        return hooks_[static_cast<std::size_t>(hook)];
    }

    std::uint64_t seed_;
    unsigned armed_ = 0;
    bool suspended_ = false;
    std::function<void(Hook)> fireListener_;
    std::array<HookState, kNumHooks> hooks_;
};

namespace detail
{
/** Storage behind plan(); exposed only so plan() can inline. */
extern FaultPlan *g_plan;
} // namespace detail

/**
 * The installed process-global plan, or nullptr when fault injection is
 * off. Inlines to a single load so hot paths pay one branch when off.
 */
inline FaultPlan *
plan()
{
    return detail::g_plan;
}

/** Install @p p as the global plan (nullptr disables). Not owned. */
void setPlan(FaultPlan *p);

/** RAII installer: installs a plan for a scope, restores on exit. */
class ScopedPlanInstall
{
  public:
    explicit ScopedPlanInstall(FaultPlan *p) : previous_(plan())
    {
        setPlan(p);
    }
    ~ScopedPlanInstall() { setPlan(previous_); }

    ScopedPlanInstall(const ScopedPlanInstall &) = delete;
    ScopedPlanInstall &operator=(const ScopedPlanInstall &) = delete;

  private:
    FaultPlan *previous_;
};

/** RAII fault holiday: suspends the installed plan (if any) in scope. */
class SuspendFaults
{
  public:
    SuspendFaults() : plan_(plan()),
                      previous_(plan_ != nullptr && plan_->suspended())
    {
        if (plan_ != nullptr)
            plan_->setSuspended(true);
    }
    ~SuspendFaults()
    {
        if (plan_ != nullptr)
            plan_->setSuspended(previous_);
    }

    SuspendFaults(const SuspendFaults &) = delete;
    SuspendFaults &operator=(const SuspendFaults &) = delete;

  private:
    FaultPlan *plan_;
    bool previous_;
};

} // namespace fault
} // namespace fafnir

#endif // FAFNIR_COMMON_FAULTINJECT_HH
