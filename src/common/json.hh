/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The telemetry layer (stats export, Chrome traces, run reports) emits
 * JSON from several places; this writer centralizes escaping, comma
 * placement, and number formatting so every artifact is well-formed by
 * construction. It is a writer only — parsing (used in tests to validate
 * the emitted artifacts) lives with the tests.
 */

#ifndef FAFNIR_COMMON_JSON_HH
#define FAFNIR_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fafnir
{

/**
 * Emits one JSON document onto a stream. Containers are opened/closed
 * explicitly; the writer tracks nesting and inserts commas and (when
 * pretty-printing) indentation.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(const std::string &name);

    void value(const std::string &text);
    void value(const char *text) { value(std::string(text)); }
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(unsigned number)
    {
        value(static_cast<std::uint64_t>(number));
    }
    void value(bool flag);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    member(const std::string &name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &text);

  private:
    struct Scope
    {
        bool isObject = false;
        std::size_t members = 0;
    };

    /** Comma/indent bookkeeping before a value or key. */
    void prepare(bool is_key);
    void indent();

    std::ostream &os_;
    bool pretty_;
    std::vector<Scope> scopes_;
    /** A key was just written; the next value completes the member. */
    bool afterKey_ = false;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_JSON_HH
