/**
 * @file
 * A vector with inline storage for its first N elements.
 *
 * The tree data path is dominated by tiny arrays: a flit header holds a
 * handful of indices and one or two query residuals. Keeping those
 * elements inside the owning object removes one heap allocation (and
 * one pointer chase) per header on the PE compare/reduce/merge path.
 * Beyond N elements a SmallVec spills to the heap and behaves like a
 * std::vector.
 *
 * The interface is the std::vector subset the repo uses — contiguous
 * T* iterators, push/emplace/resize/erase, lexicographic comparison —
 * not a drop-in replacement. Unlike std::vector, moving a SmallVec
 * that is inline moves element-by-element, so iterators into a
 * moved-from SmallVec are invalid either way.
 */

#ifndef FAFNIR_COMMON_SMALLVEC_HH
#define FAFNIR_COMMON_SMALLVEC_HH

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace fafnir
{

template <typename T, std::size_t N>
class SmallVec
{
  public:
    static_assert(N > 0, "SmallVec needs at least one inline slot");

    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;
    using size_type = std::size_t;

    SmallVec() = default;

    SmallVec(std::initializer_list<T> init) { assignRange(init.begin(), init.size()); }

    SmallVec(const SmallVec &other) { assignRange(other.data_, other.size_); }

    SmallVec(SmallVec &&other) noexcept { stealFrom(other); }

    ~SmallVec() { destroyAll(); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            clear();
            assignRange(other.data_, other.size_);
        }
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            stealFrom(other);
        }
        return *this;
    }

    SmallVec &
    operator=(std::initializer_list<T> init)
    {
        clear();
        assignRange(init.begin(), init.size());
        return *this;
    }

    T *data() { return data_; }
    const T *data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }
    /** True while the elements live inside the object itself. */
    bool inlined() const { return data_ == inlineData(); }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    reserve(std::size_t wanted)
    {
        if (wanted > capacity_)
            grow(wanted);
    }

    void
    push_back(const T &value)
    {
        emplace_back(value);
    }

    void
    push_back(T &&value)
    {
        emplace_back(std::move(value));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        T *slot = data_ + size_;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        FAFNIR_ASSERT(size_ > 0, "pop_back on empty SmallVec");
        data_[--size_].~T();
    }

    void
    resize(std::size_t count)
    {
        if (count < size_) {
            while (size_ > count)
                data_[--size_].~T();
            return;
        }
        reserve(count);
        while (size_ < count)
            ::new (static_cast<void *>(data_ + size_++)) T();
    }

    void
    clear()
    {
        while (size_ > 0)
            data_[--size_].~T();
    }

    /** Erase [first, last); later elements shift down. */
    iterator
    erase(iterator first, iterator last)
    {
        iterator out = std::move(last, end(), first);
        while (end() != out)
            pop_back();
        return first;
    }

    bool
    operator==(const SmallVec &other) const
    {
        return std::equal(begin(), end(), other.begin(), other.end());
    }

    bool
    operator<(const SmallVec &other) const
    {
        return std::lexicographical_compare(begin(), end(), other.begin(),
                                            other.end());
    }

  private:
    T *
    inlineData()
    {
        return reinterpret_cast<T *>(inline_);
    }

    const T *
    inlineData() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    /** Copy-construct @p count elements from @p src into an empty self. */
    void
    assignRange(const T *src, std::size_t count)
    {
        reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            ::new (static_cast<void *>(data_ + i)) T(src[i]);
        size_ = count;
    }

    /** Take @p other's elements; leaves @p other empty and inline. */
    void
    stealFrom(SmallVec &other)
    {
        if (!other.inlined()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
        } else {
            data_ = inlineData();
            size_ = other.size_;
            capacity_ = N;
            for (std::size_t i = 0; i < size_; ++i) {
                ::new (static_cast<void *>(data_ + i))
                    T(std::move(other.data_[i]));
                other.data_[i].~T();
            }
        }
        other.data_ = other.inlineData();
        other.size_ = 0;
        other.capacity_ = N;
    }

    void
    grow(std::size_t wanted)
    {
        const std::size_t cap = std::max(wanted, capacity_ * 2);
        T *fresh = static_cast<T *>(
            ::operator new(cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        if (!inlined())
            ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = fresh;
        capacity_ = cap;
    }

    /** Destroy elements and release any heap block (end-of-life only). */
    void
    destroyAll()
    {
        clear();
        if (!inlined())
            ::operator delete(data_, std::align_val_t(alignof(T)));
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = inlineData();
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_SMALLVEC_HH
