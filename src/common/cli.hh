/**
 * @file
 * Minimal command-line flag parsing for the bench harnesses.
 *
 * Flags use the form `--name=value` (or `--name value`). Unknown flags
 * exit with a usage error (and a did-you-mean suggestion) so typos
 * never silently fall back to defaults; `--help` prints the registered
 * flags and exits.
 */

#ifndef FAFNIR_COMMON_CLI_HH
#define FAFNIR_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fafnir
{

/** Registry of typed flags bound to caller-owned variables. */
class FlagParser
{
  public:
    explicit FlagParser(std::string program_summary)
        : summary_(std::move(program_summary))
    {}

    /** Register flags before parse(). */
    void addUnsigned(const std::string &name, unsigned &value,
                     const std::string &help);
    void addUint64(const std::string &name, std::uint64_t &value,
                   const std::string &help);
    void addDouble(const std::string &name, double &value,
                   const std::string &help);
    void addBool(const std::string &name, bool &value,
                 const std::string &help);
    void addString(const std::string &name, std::string &value,
                   const std::string &help);

    /**
     * Parse argv. Exits with code 0 on --help; prints an error and
     * exits with code 2 on unknown flags or malformed values.
     */
    void parse(int argc, char **argv);

  private:
    enum class Kind
    {
        Unsigned,
        Uint64,
        Double,
        Bool,
        String,
    };

    struct Flag
    {
        std::string name;
        Kind kind;
        void *target;
        std::string help;
        std::string defaultValue;
    };

    void add(const std::string &name, Kind kind, void *target,
             const std::string &help, std::string default_value);
    void assign(const Flag &flag, const std::string &text);
    [[noreturn]] void fail(const std::string &message) const;
    [[noreturn]] void printHelpAndExit(const char *argv0) const;

    std::string summary_;
    std::vector<Flag> flags_;
};

} // namespace fafnir

#endif // FAFNIR_COMMON_CLI_HH
