/**
 * @file
 * Item debugging helpers.
 */

#include "item.hh"

namespace fafnir::core
{

std::string
Item::toString() const
{
    std::string s = "[indices:" + indices.toString() + " | queries:";
    for (std::size_t i = 0; i < queries.size(); ++i) {
        if (i)
            s += ' ';
        s += 'q' + std::to_string(queries[i].query) + ':' +
             queries[i].remaining.toString();
    }
    return s + "]";
}

} // namespace fafnir::core
