/**
 * @file
 * Implementation of the pipelined multi-engine serving front-end.
 */

#include "serving.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/debug.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/attribution.hh"
#include "telemetry/slo.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::core
{

namespace
{

/** Service-track threads for the pipeline stages (0..3 are taken by the
 *  open-loop queue/serve/guard/delivery rows). */
constexpr int kPrepareTid = 6;
constexpr int kDispatchTid = 7;
constexpr int kWritebackTid = 8;
constexpr int kEngineTidBase = 10;

} // namespace

std::vector<EngineReplica>
makeEventReplicas(unsigned count, const ReplicaMemoryConfig &mem,
                  const embedding::TableConfig &tables,
                  const EventEngineConfig &config,
                  const embedding::EmbeddingStore *store)
{
    std::vector<EngineReplica> replicas;
    replicas.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        EngineReplica r;
        r.eventq = std::make_unique<EventQueue>();
        r.memory = std::make_unique<dram::MemorySystem>(
            *r.eventq, mem.geometry, mem.timing, mem.interleave,
            mem.blockBytes);
        r.layout = std::make_unique<embedding::VectorLayout>(
            tables, r.memory->mapper());
        r.engine = std::make_unique<EventDrivenEngine>(
            *r.memory, *r.layout, config, store);
        replicas.push_back(std::move(r));
    }
    return replicas;
}

ServingPipeline::ServingPipeline(const ServingConfig &config,
                                 std::vector<EngineReplica> &replicas,
                                 const embedding::EmbeddingStore *store)
    : config_(config), replicas_(replicas), store_(store)
{
    FAFNIR_ASSERT(config_.engines >= 1, "pipeline needs >= 1 engine");
    FAFNIR_ASSERT(replicas_.size() >= config_.engines,
                  "pipeline configured for ", config_.engines,
                  " engines but only ", replicas_.size(),
                  " replicas were built");
    if (config_.pipelineDepth == 0)
        config_.pipelineDepth = 1;
    config_.prepareWorkers = std::max(1u, config_.prepareWorkers);
    preparePool_ = std::make_unique<PreparePool>(config_.prepareWorkers);
    slotArenas_.reserve(config_.pipelineDepth);
    for (unsigned s = 0; s < config_.pipelineDepth; ++s)
        slotArenas_.push_back(preparePool_->makeSlotArenas());
    perEngineBatches_.reserve(config_.engines);
    perEngineBusyTicks_.reserve(config_.engines);
    for (unsigned e = 0; e < config_.engines; ++e) {
        perEngineBatches_.push_back(std::make_unique<Counter>());
        perEngineBusyTicks_.push_back(std::make_unique<Counter>());
    }
}

unsigned
ServingPipeline::pickEngine(std::size_t batchOrdinal,
                            const std::vector<Tick> &engineFree) const
{
    if (config_.dispatch == DispatchPolicy::RoundRobin)
        return static_cast<unsigned>(batchOrdinal % engineFree.size());
    unsigned best = 0;
    for (unsigned e = 1; e < engineFree.size(); ++e)
        if (engineFree[e] < engineFree[best])
            best = e;
    return best;
}

Tick
ServingPipeline::serviceP(double pct) const
{
    if (serviceHistory_.empty())
        return 0;
    std::vector<Tick> sorted = serviceHistory_;
    std::sort(sorted.begin(), sorted.end());
    const double frac = std::min(std::max(pct, 0.0), 100.0) / 100.0;
    auto rank = static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(sorted.size())));
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

PipelineReport
ServingPipeline::serve(const std::vector<embedding::Batch> &batches,
                       Tick arrivalGap, Tick start)
{
    std::vector<Tick> arrivals;
    arrivals.reserve(batches.size());
    for (std::size_t k = 0; k < batches.size(); ++k)
        arrivals.push_back(start + arrivalGap * k);
    return serve(batches, arrivals);
}

PipelineReport
ServingPipeline::serve(const std::vector<embedding::Batch> &batches,
                       const std::vector<Tick> &arrivals)
{
    FAFNIR_ASSERT(arrivals.size() == batches.size(),
                  "serve() wants one arrival tick per batch (",
                  arrivals.size(), " arrivals for ", batches.size(),
                  " batches)");
    const Tick start = arrivals.empty() ? 0 : arrivals.front();
    const unsigned engines = config_.engines;
    const unsigned depth = config_.pipelineDepth;
    const embedding::VectorLayout &layout = *replicas_[0].layout;

    PipelineReport report;
    report.batches.reserve(batches.size());
    report.batchesPerEngine.assign(engines, 0);
    report.busyTicksPerEngine.assign(engines, 0);

    // Stage availability, all in simulated ticks: the host prepare
    // pool handles one batch at a time (its workers divide the batch),
    // each engine replica serves one batch at a time, results drain
    // through one writeback port, and at most `depth` prepared batches
    // exist at once. Slot s frees at its occupant's engine completion:
    // arena recycling rides a pool thread, off the writeback path.
    std::vector<Tick> engineFree(engines, start);
    Tick prepareFree = start;
    Tick writebackFree = start;
    std::vector<Tick> slotRetire(depth, 0);
    std::vector<PreparedBatch> slots(depth);

    telemetry::TraceSink *ts = telemetry::sink();
    if (ts) {
        ts->setThreadName(telemetry::kPidService, kPrepareTid,
                          "pipeline prepare");
        ts->setThreadName(telemetry::kPidService, kDispatchTid,
                          "pipeline dispatch");
        ts->setThreadName(telemetry::kPidService, kWritebackTid,
                          "pipeline writeback");
        for (unsigned e = 0; e < engines; ++e)
            ts->setThreadName(telemetry::kPidService,
                              kEngineTidBase + static_cast<int>(e),
                              "engine " + std::to_string(e));
    }

    // Windowed telemetry and SLO feeds: one load + branch when neither
    // is installed, mirroring the trace-sink pattern.
    telemetry::TimeSeries *series = telemetry::timeseries();
    telemetry::SloMonitor *slo = telemetry::sloMonitor();
    telemetry::FlightRecorder *rec = telemetry::flightRecorder();
    telemetry::WindowedHistogram *winLatency = nullptr;
    telemetry::WindowedHistogram *winQueueWait = nullptr;
    telemetry::WindowedHistogram *winOccupancy = nullptr;
    telemetry::WindowedCounter *winBatches = nullptr;
    telemetry::WindowedCounter *winQueries = nullptr;
    telemetry::WindowedCounter *winHedges = nullptr;
    std::vector<telemetry::WindowedCounter *> winEngineBatches;
    std::vector<telemetry::WindowedHistogram *> winEngineService;
    if (series) {
        winLatency = &series->histogram(
            "serving.latency_us", "arrival-to-writeback per query");
        winQueueWait = &series->histogram(
            "serving.queue_wait_us", "dispatch-queue wait per batch");
        winOccupancy = &series->histogram(
            "serving.slot_occupancy",
            "prepared slots still retiring at prepare start");
        winBatches = &series->counter("serving.batches");
        winQueries = &series->counter("serving.queries");
        winHedges = &series->counter("serving.hedges");
        for (unsigned e = 0; e < engines; ++e) {
            const std::string prefix =
                "serving.engine" + std::to_string(e);
            winEngineBatches.push_back(
                &series->counter(prefix + ".batches"));
            winEngineService.push_back(&series->histogram(
                prefix + ".service_us", "execute time per batch"));
        }
    }

    Tick lastDone = start;
    for (std::size_t k = 0; k < batches.size(); ++k) {
        const embedding::Batch &batch = batches[k];
        const Tick arrival = arrivals[k];
        const unsigned s = static_cast<unsigned>(k % depth);

        // --- Prepare stage (overlaps execution of earlier batches). ----
        const Tick prepare_start =
            std::max({arrival, prepareFree, slotRetire[s]});
        if (winOccupancy) {
            unsigned occupied = 0;
            for (const Tick retire : slotRetire)
                occupied += retire > prepare_start;
            winOccupancy->record(prepare_start, occupied);
        }
        // Modeled cost always uses the configured worker count, even
        // when a fault plan forces the real PreparePool serial — the
        // simulated timeline must not depend on host-thread decisions.
        const auto pw = static_cast<Tick>(config_.prepareWorkers);
        const Tick prepare_cost =
            config_.prepareFixed +
            config_.preparePerReference * batch.totalIndices() / pw +
            config_.prepareShardOverhead * (pw - 1);
        const Tick prepare_done = prepare_start + prepare_cost;
        prepareFree = prepare_done;
        prepareTicks_ += prepare_cost;
        report.prepareBusy += prepare_cost;
        // code = batch ordinal; a = references, b = prepare cost ticks.
        if (rec)
            rec->record(telemetry::Stage::Prepare, prepare_done,
                        static_cast<std::uint32_t>(k),
                        batch.totalIndices(), prepare_cost);

        slots[s] = preparePool_->prepare(layout, store_, batch,
                                         config_.dedup, &slotArenas_[s],
                                         config_.payload);

        // --- Dispatch + execute on the chosen replica. ------------------
        const unsigned primary = pickEngine(k, engineFree);
        const Tick dispatch_ready = std::max(prepare_done,
                                             engineFree[primary]);
        telemetry::Attribution *attr = telemetry::attribution();
        EventLookupTiming timing =
            replicas_[primary].engine->lookupPrepared(slots[s],
                                                      dispatch_ready);
        const std::uint64_t ordinal = attr ? attr->currentBatch() : 0;
        engineFree[primary] = timing.complete;
        const Tick service = timing.complete - timing.issued;
        report.busyTicksPerEngine[primary] += service;
        *perEngineBusyTicks_[primary] += service;

        // --- Hedge a straggler onto a second replica. -------------------
        unsigned winner = primary;
        bool hedged = false;
        bool hedge_won = false;
        EventLookupTiming win_timing = timing;
        if (config_.hedgePct > 0.0 && engines >= 2 &&
            serviceHistory_.size() >= config_.hedgeWarmup) {
            const Tick p = serviceP(config_.hedgePct);
            if (service > p) {
                hedged = true;
                ++report.hedgesIssued;
                ++hedgesIssued_;
                // Backup goes to the replica (other than the primary)
                // that frees up earliest, issued the moment the primary
                // crossed the percentile.
                unsigned backup = primary == 0 ? 1 : 0;
                for (unsigned e = 0; e < engines; ++e)
                    if (e != primary && engineFree[e] < engineFree[backup])
                        backup = e;
                const Tick backup_start =
                    std::max(timing.issued + p, engineFree[backup]);
                EventLookupTiming backup_timing;
                {
                    // The backup replays the same prepared batch; keep
                    // attribution single-sourced on the primary run.
                    telemetry::ScopedAttributionInstall off(nullptr);
                    backup_timing =
                        replicas_[backup].engine->lookupPrepared(
                            slots[s], backup_start);
                }
                engineFree[backup] = backup_timing.complete;
                const Tick backup_service =
                    backup_timing.complete - backup_timing.issued;
                report.busyTicksPerEngine[backup] += backup_service;
                *perEngineBusyTicks_[backup] += backup_service;
                if (winHedges)
                    winHedges->record(backup_start);
                if (backup_timing.complete < timing.complete) {
                    hedge_won = true;
                    ++report.hedgesWon;
                    ++hedgesWon_;
                    winner = backup;
                    win_timing = std::move(backup_timing);
                }
            }
        }
        serviceHistory_.push_back(service);

        // --- Writeback (results land host-side, in arrival order). ------
        const Tick complete = win_timing.complete;
        const Tick wb_start = std::max(complete, writebackFree);
        const Tick wb_done =
            wb_start + config_.writebackPerQuery * batch.size();
        writebackFree = wb_done;
        // Slot turnaround is off the writeback path: the slot's arena
        // recycle is handed to a pool thread at engine completion, so
        // the slot frees at `complete`, not at writeback drain.
        slotRetire[s] = complete;
        lastDone = std::max(lastDone, wb_done);

        // --- Telemetry: stage spans + latency-split back-annotation. ----
        const Tick dispatch_wait = timing.issued - prepare_done;
        dispatchWaitTicks_ += dispatch_wait;
        report.dispatchWait += dispatch_wait;
        report.writebackBusy += wb_done - wb_start;
        if (rec) {
            // Dispatch: code = engine replica; a = batch, b = queue wait.
            rec->record(telemetry::Stage::Dispatch, timing.issued,
                        primary, k, dispatch_wait);
            // Writeback: code = winning replica; a = batch, b = drain.
            rec->record(telemetry::Stage::Writeback, wb_done, winner, k,
                        wb_done - wb_start);
        }
        ++servedBatches_;
        servedQueries_ += batch.size();
        ++(*perEngineBatches_[winner]);
        ++report.batchesPerEngine[winner];

        // --- Windowed telemetry + SLO feed (per query, at writeback). ---
        const double latencyUs = static_cast<double>(wb_done - arrival) /
                                 static_cast<double>(kTicksPerUs);
        // Tail-latency trigger threshold: the rolling p99 *before* this
        // batch's own samples land, so a spike is judged against the
        // recent past, not against itself. 64 warmup samples keep the
        // first batches from tripping on a cold histogram.
        double tailP99 = 0.0;
        bool tailWarm = false;
        if (series && rec) {
            const telemetry::LogHistogram recent = winLatency->rolling(8);
            tailWarm = recent.count() >= 64;
            tailP99 = recent.p99();
        }
        if (slo) {
            for (std::size_t q = 0; q < batch.size(); ++q) {
                slo->recordLatency(wb_done, latencyUs);
                slo->recordOutcome(wb_done, true);
            }
        }
        if (attr) {
            attr->annotateBatchStages(ordinal, prepare_done - arrival,
                                      dispatch_wait);
        }
        // The batch's tail exemplar: its slowest query *after* stage
        // back-annotation, so the attribution split telescopes exactly
        // (sharded runs annotate shardCombine later; the copy here is
        // self-consistent either way).
        const telemetry::QueryAttribution *victim = nullptr;
        if (attr) {
            const auto &qs = attr->queries();
            for (auto it = qs.rbegin();
                 it != qs.rend() && it->batch == ordinal; ++it) {
                if (victim == nullptr || it->total() > victim->total() ||
                    (it->total() == victim->total() &&
                     it->query < victim->query)) {
                    victim = &*it;
                }
            }
        }
        if (series) {
            constexpr double us = static_cast<double>(kTicksPerUs);
            winBatches->record(wb_done);
            winQueries->record(wb_done, batch.size());
            winQueueWait->record(timing.issued,
                                 static_cast<double>(dispatch_wait) / us);
            winEngineBatches[winner]->record(complete);
            winEngineService[winner]->record(
                complete,
                static_cast<double>(win_timing.complete -
                                    win_timing.issued) / us);
            std::size_t plain = batch.size();
            if (victim != nullptr) {
                telemetry::Exemplar ex;
                ex.tick = wb_done;
                ex.batch = victim->batch;
                ex.query = victim->query;
                ex.flow = victim->flow;
                ex.totalTicks = victim->total();
                ex.components = {victim->batchPrepare,
                                 victim->dispatchQueue,
                                 victim->dramService,
                                 victim->ctrlQueue,
                                 victim->peCompute,
                                 victim->forwardWait,
                                 victim->serviceQueue,
                                 victim->shardCombine};
                winLatency->record(wb_done, latencyUs, ex);
                --plain;
            }
            for (std::size_t q = 0; q < plain; ++q)
                winLatency->record(wb_done, latencyUs);
        }
        if (rec && tailWarm && latencyUs > tailP99) {
            char detail[112];
            std::snprintf(detail, sizeof detail,
                          "batch %llu latency %.6gus > rolling p99 %.6gus",
                          static_cast<unsigned long long>(k), latencyUs,
                          tailP99);
            rec->trigger(telemetry::Trigger::TailLatency, wb_done, detail,
                         victim);
        }
        if (ts) {
            const double batch_arg = static_cast<double>(k);
            ts->completeEvent(telemetry::kPidService, kPrepareTid,
                              "serving.prepare", "prepare", prepare_start,
                              prepare_cost, {{"batch", batch_arg}});
            if (dispatch_wait > 0) {
                ts->completeEvent(telemetry::kPidService, kDispatchTid,
                                  "serving.dispatchQueue", "dispatch wait",
                                  prepare_done, dispatch_wait,
                                  {{"batch", batch_arg},
                                   {"engine",
                                    static_cast<double>(primary)}});
            }
            ts->completeEvent(
                telemetry::kPidService,
                kEngineTidBase + static_cast<int>(winner),
                "serving.execute", "execute", win_timing.issued,
                win_timing.complete - win_timing.issued,
                {{"batch", batch_arg},
                 {"hedged", hedged ? 1.0 : 0.0}});
            ts->completeEvent(telemetry::kPidService, kWritebackTid,
                              "serving.writeback", "writeback", wb_start,
                              wb_done - wb_start, {{"batch", batch_arg}});
        }

        ServedBatchTrace trace;
        trace.batch = k;
        trace.engine = winner;
        trace.hedged = hedged;
        trace.hedgeWon = hedge_won;
        trace.arrival = arrival;
        trace.prepareStart = prepare_start;
        trace.prepareDone = prepare_done;
        trace.started = win_timing.issued;
        trace.complete = complete;
        trace.done = wb_done;
        trace.attribBatch = ordinal;
        trace.timing = std::move(win_timing);
        report.batches.push_back(std::move(trace));

        // Batch k's values are computed; recycle its buffers on a pool
        // thread while the next iteration prepares. prepare() on the
        // same slot waits for this recycle before reusing the arenas.
        preparePool_->recycleAsync(std::move(slots[s]), slotArenas_[s]);
        slots[s] = PreparedBatch{};
    }

    for (auto &arenas : slotArenas_)
        preparePool_->waitRecycle(arenas);

    report.makespan = lastDone > start ? lastDone - start : 0;
    if (series)
        series->flush(lastDone);
    if (slo)
        slo->flush(lastDone);
    FAFNIR_DPRINTF(Serving, "served ", batches.size(), " batches on ",
                   engines, " engines (depth ", depth, "): ",
                   report.requestsPerSecond(), " req/s, hedges ",
                   report.hedgesIssued, "/", report.hedgesWon);
    return report;
}

void
ServingPipeline::registerStats(StatGroup &group)
{
    group.addCounter("batches", servedBatches_,
                     "batches served through the pipeline");
    group.addCounter("queries", servedQueries_, "queries served");
    group.addCounter("hedgesIssued", hedgesIssued_,
                     "straggler batches hedged onto a second engine");
    group.addCounter("hedgesWon", hedgesWon_,
                     "hedged batches whose backup finished first");
    group.addCounter("prepareTicks", prepareTicks_,
                     "modeled host prepare time (sharded dedup + headers)");
    group.addCounter("dispatchWaitTicks", dispatchWaitTicks_,
                     "prepared batches waiting for a free engine");
    preparePool_->registerStats(group);
    for (unsigned e = 0; e < config_.engines; ++e) {
        group.addCounter("engine" + std::to_string(e) + ".batches",
                         *perEngineBatches_[e],
                         "batches served by engine " + std::to_string(e));
        group.addCounter("engine" + std::to_string(e) + ".busyTicks",
                         *perEngineBusyTicks_[e],
                         "execute ticks on engine " + std::to_string(e) +
                             " (including losing hedge backups)");
    }
}

void
ServingPipeline::printHealthScoreboard(std::ostream &os,
                                       const PipelineReport &report) const
{
    const double makespan = static_cast<double>(report.makespan);
    const auto pct = [&](Tick busy) {
        return makespan > 0.0 ? TextTable::num(
                                    100.0 * static_cast<double>(busy) /
                                        makespan, 1) + "%"
                              : "-";
    };
    const telemetry::TimeSeries *series = telemetry::timeseries();
    // Windowed columns read the installed engine; "-" when absent or
    // when the metric has no samples.
    const auto winP99 = [&](const std::string &metric) -> std::string {
        if (series == nullptr)
            return "-";
        const telemetry::WindowedHistogram *h =
            series->findHistogram(metric);
        if (h == nullptr || h->total() == 0)
            return "-";
        return TextTable::num(h->peakWindowPercentile(99.0), 1);
    };
    const auto winRate = [&](const std::string &metric) -> std::string {
        if (series == nullptr)
            return "-";
        const telemetry::WindowedCounter *c = series->findCounter(metric);
        if (c == nullptr || c->total() == 0)
            return "-";
        return TextTable::num(c->rollingRatePerSec(c->windowCount()), 0);
    };

    TextTable table("serving health scoreboard");
    table.setHeader({"stage", "batches", "util%", "peakWinP99us",
                     "winRate/s", "notes"});
    const std::size_t n = report.batches.size();
    table.row("prepare", n, pct(report.prepareBusy),
              winP99("serving.slot_occupancy"), winRate("serving.batches"),
              "workers=" + std::to_string(config_.prepareWorkers) +
                  ", p99 col = slot occupancy");
    table.row("dispatch", n, pct(report.dispatchWait),
              winP99("serving.queue_wait_us"), "-",
              "util% = share of time a batch waited");
    for (unsigned e = 0; e < config_.engines; ++e) {
        const std::string prefix = "serving.engine" + std::to_string(e);
        std::uint64_t hedgeWins = 0;
        for (const ServedBatchTrace &t : report.batches)
            hedgeWins += t.hedgeWon && t.engine == e;
        table.row("engine" + std::to_string(e),
                  report.batchesPerEngine[e],
                  pct(report.busyTicksPerEngine[e]),
                  winP99(prefix + ".service_us"),
                  winRate(prefix + ".batches"),
                  "hedgeWins=" + std::to_string(hedgeWins));
    }
    table.row("writeback", n, pct(report.writebackBusy),
              winP99("serving.latency_us"), winRate("serving.queries"),
              "p99 col = end-to-end query latency");
    if (const fault::FaultPlan *plan = fault::plan()) {
        table.row("faults", plan->totalFired(), "-", "-", "-",
                  "skippedFirings=" +
                      std::to_string(plan->totalSkipped()));
    }
    if (const telemetry::SloMonitor *slo = telemetry::sloMonitor()) {
        table.row("slo", slo->totalFires(), "-", "-", "-",
                  "fires/clears=" + std::to_string(slo->totalFires()) +
                      "/" + std::to_string(slo->totalClears()) +
                      (slo->anyActive() ? " [ACTIVE]" : ""));
    }
    table.print(os);
}

} // namespace fafnir::core
