/**
 * @file
 * Implementation of the functional tree evaluator.
 */

#include "functional.hh"

#include <algorithm>

#include "common/logging.hh"
#include "embedding/reduce_kernels.hh"

namespace fafnir::core
{

TreeRun
FunctionalTree::run(const PreparedBatch &prepared, bool values,
                    bool keep_trace, embedding::ReduceOp op) const
{
    const unsigned num_pes = topology_.numPes();
    const unsigned num_leaves = topology_.numLeafPes();

    TreeRun run;
    if (keep_trace)
        run.trace.resize(num_pes + 1);

    // Assemble the leaf PE input sides from the per-rank read lists.
    std::vector<std::vector<Item>> side_a(num_pes + 1);
    std::vector<std::vector<Item>> side_b(num_pes + 1);
    FAFNIR_ASSERT(prepared.rankReads.size() >= topology_.numRanks(),
                  "prepared batch covers ", prepared.rankReads.size(),
                  " ranks, tree expects ", topology_.numRanks());
    for (unsigned rank = 0; rank < topology_.numRanks(); ++rank) {
        const unsigned pe = topology_.leafPeOf(rank);
        auto &side = topology_.sideOf(rank) == 0 ? side_a[pe] : side_b[pe];
        for (const auto &read : prepared.rankReads[rank])
            side.push_back(read.item);
    }

    // Children have larger heap ids than parents, so a descending sweep
    // evaluates each PE after both of its children. The pool recycles
    // each level's dead value buffers into the next level's outputs.
    VectorPool pool;
    std::vector<std::vector<Item>> outputs(num_pes + 1);
    for (unsigned pe = num_pes; pe >= 1; --pe) {
        std::vector<Item> *a = &side_a[pe];
        std::vector<Item> *b = &side_b[pe];
        if (!topology_.isLeafPe(pe)) {
            a = &outputs[topology_.leftChild(pe)];
            b = &outputs[topology_.rightChild(pe)];
        }

        PeActivity activity;
        std::vector<PeOutput> pe_out = ProcessingElement::process(
            *a, *b, activity, values, op, &pool, prepared.payload);
        run.total += activity;
        run.maxPeOutputs = std::max(run.maxPeOutputs, pe_out.size());

        if (keep_trace) {
            run.trace[pe].inputsA = *a;
            run.trace[pe].inputsB = *b;
            run.trace[pe].outputs = pe_out;
            run.trace[pe].activity = activity;
        }

        if (pe == TreeTopology::rootPe()) {
            run.rootOutputs = std::move(pe_out);
        } else {
            outputs[pe].reserve(pe_out.size());
            for (auto &out : pe_out)
                outputs[pe].push_back(std::move(out.item));
        }
        // The inputs are consumed: recycle their value buffers, then
        // free the item lists eagerly.
        if (!topology_.isLeafPe(pe)) {
            pool.releaseValues(outputs[topology_.leftChild(pe)]);
            pool.releaseValues(outputs[topology_.rightChild(pe)]);
            outputs[topology_.leftChild(pe)].clear();
            outputs[topology_.rightChild(pe)].clear();
        } else {
            pool.releaseValues(side_a[pe]);
            pool.releaseValues(side_b[pe]);
        }
        if (pe == 1)
            break; // unsigned loop guard
    }
    (void)num_leaves;

    // Root output stage: per query, sum its (disjoint) partial items.
    const std::size_t num_queries = prepared.querySets.size();
    run.results.resize(num_queries);
    run.rootItemsPerQuery.assign(num_queries, 0);
    for (QueryId q = 0; q < num_queries; ++q) {
        IndexSet covered;
        embedding::Vector acc;
        for (const auto &out : run.rootOutputs) {
            if (!out.item.findQuery(q))
                continue;
            ++run.rootItemsPerQuery[q];
            FAFNIR_ASSERT(covered.disjointWith(out.item.indices),
                          "query ", q, ": overlapping root items — ",
                          covered.toString(), " vs ",
                          out.item.indices.toString());
            covered = covered.disjointUnion(out.item.indices);
            if (values && !out.item.value.empty()) {
                if (acc.empty()) {
                    acc = out.item.value;
                } else {
                    embedding::combineSpan(op, acc.data(),
                                           out.item.value.data(),
                                           acc.size());
                }
            }
        }
        FAFNIR_ASSERT(run.rootItemsPerQuery[q] >= 1,
                      "query ", q, " produced no root items");
        run.rootCombines += run.rootItemsPerQuery[q] - 1;
        FAFNIR_ASSERT(covered == prepared.querySets[q],
                      "query ", q, " incomplete at root: got ",
                      covered.toString(), ", want ",
                      prepared.querySets[q].toString());
        // Mean is a Sum through the tree, scaled at the root output.
        embedding::finalizeSpan(op, acc.data(), acc.size(),
                                covered.size());
        run.results[q] = std::move(acc);
    }

    run.poolStats = pool.stats();
    return run;
}

} // namespace fafnir::core
