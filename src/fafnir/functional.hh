/**
 * @file
 * Functional evaluation of the reduction tree.
 *
 * Flows a prepared batch level by level from the leaves to the root and
 * combines the root outputs per query. The evaluator is the executable
 * specification of Fafnir's batch-processing mechanism (Figure 6): its
 * results are checked against the reference gather-reduce, and the timing
 * engine replays its per-PE traces with latencies attached.
 *
 * Root combine. PEs only reduce across their two inputs, so when several
 * vectors of one query enter the tree through the same subtree path they
 * can reach the root as multiple disjoint partial sums. The root's output
 * stage sums those partials (rootCombines counts them); with the paper's
 * one-vector-per-rank placement this is rare, and zero in the paper's
 * running example.
 */

#ifndef FAFNIR_FAFNIR_FUNCTIONAL_HH
#define FAFNIR_FAFNIR_FUNCTIONAL_HH

#include <vector>

#include "embedding/table.hh"
#include "fafnir/host.hh"
#include "fafnir/pe.hh"
#include "fafnir/pool.hh"
#include "fafnir/tree.hh"

namespace fafnir::core
{

/** Captured inputs/outputs of one PE for one batch. */
struct PeTrace
{
    std::vector<Item> inputsA;
    std::vector<Item> inputsB;
    std::vector<PeOutput> outputs;
    PeActivity activity;
};

/** Result of evaluating one batch. */
struct TreeRun
{
    /** Root output items (post-merge). */
    std::vector<PeOutput> rootOutputs;
    /** Reduced vector per query id; empty vectors in timing-only runs. */
    std::vector<embedding::Vector> results;
    /** Summed PE activity over the whole tree. */
    PeActivity total;
    /** Extra per-query summations applied at the root output stage. */
    std::size_t rootCombines = 0;
    /** Number of root items feeding each query (>= 1). */
    std::vector<std::size_t> rootItemsPerQuery;
    /** Largest post-merge output list of any PE (buffer occupancy). */
    std::size_t maxPeOutputs = 0;
    /** Value-buffer recycling counters for the evaluation's pool. */
    VectorPool::Stats poolStats;
    /** Per-PE traces, indexed by heap id; kept only when requested. */
    std::vector<PeTrace> trace;
};

/** Evaluates batches on a fixed topology. */
class FunctionalTree
{
  public:
    explicit FunctionalTree(const TreeTopology &topology)
        : topology_(topology)
    {}

    /**
     * Evaluate @p prepared.
     * @param values combine vector values (functional checking) or headers
     *        only (timing runs).
     * @param keep_trace retain per-PE inputs/outputs for the timing engine.
     * @param op element-wise reduction operator (Mean is finalized at the
     *        root output stage).
     */
    TreeRun run(const PreparedBatch &prepared, bool values = true,
                bool keep_trace = false,
                embedding::ReduceOp op = embedding::ReduceOp::Sum) const;

    const TreeTopology &topology() const { return topology_; }

  private:
    TreeTopology topology_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_FUNCTIONAL_HH
