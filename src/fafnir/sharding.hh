/**
 * @file
 * Sharded multi-store serving tier.
 *
 * One embedding store behind one memory system caps capacity at the
 * 8-replica sweep; production recommendation serving shards tables
 * across nodes (RecNMP's production traces, TensorDIMM's model-parallel
 * DIMM pooling). This module scales the Fafnir serving front-end the
 * same way:
 *
 *   router -> [shard 0: prepare -> replicas] \
 *          -> [shard 1: prepare -> replicas]  -> fixed-order combine
 *          -> [shard S-1: ...]               /
 *
 * A ShardRouter places tables onto S shards (hash or range placement)
 * and splits every batch into per-shard sub-batches with dense local
 * query ids. Each shard runs its own ServingPipeline over its own
 * replica group (engines, prepare pool, dispatch, hedging — everything
 * the single-store tier already has). The tier then scatter-gathers:
 * a query's per-shard partials are combined in fixed shard order
 * 0..S-1 at a serial combine port, and Mean is finalized exactly once
 * with the query's *global* gathered count.
 *
 * Bit-identity at any shard count and placement is by construction:
 *  - Sum/Mean: the store synthesizes values as multiples of 1/16 below
 *    64, so every partial and total sum is exactly representable in
 *    fp32 — addition order cannot change the bits. Shard engines run
 *    Mean queries as Sum (makeShardReplicas rewrites the op) and the
 *    combiner applies the single root divide with the global count,
 *    mirroring how the tree itself finalizes Mean at the root.
 *  - Min/Max are associative and commutative exactly.
 * The conformance suite (tests/test_sharding.cc) pins served values
 * bit-identical to the single-store reference across shard counts,
 * placements, ops, skews, fault plans, and hedging.
 *
 * Hot-shard handling: the tier accumulates per-table reference counts
 * and exposes a deterministic rebalance hook — when the max/mean
 * per-shard load ratio crosses a threshold, the hottest tables move
 * from the hottest to the coldest shard (ties by lowest id, so the
 * move list is a pure function of the observed load). Per-shard load
 * lands in a `serving.shard.*` StatGroup, in windowed
 * `serving.shard<s>.*` counters (timeline rows), and in scoreboard
 * rows next to the per-stage health board.
 */

#ifndef FAFNIR_FAFNIR_SHARDING_HH
#define FAFNIR_FAFNIR_SHARDING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "embedding/query.hh"
#include "embedding/reduce_op.hh"
#include "embedding/table.hh"
#include "fafnir/serving.hh"

namespace fafnir::core
{

/** How tables map onto shards. */
enum class PlacementPolicy
{
    /** splitmix-hashed table id modulo S — placement-oblivious, spreads
     *  adjacent (often co-hot) tables across shards. */
    Hash,
    /** Contiguous table ranges: shard s owns tables with
     *  table * S / T == s. Covers the id space with no gaps or
     *  overlaps at any S, T. */
    Range,
};

/** "hash" or "range"; fatal on anything else. */
PlacementPolicy parsePlacement(const std::string &name);
const char *toString(PlacementPolicy policy);

/** One deterministic rebalance step: move @p table from -> to. */
struct ShardMove
{
    unsigned table = 0;
    unsigned from = 0;
    unsigned to = 0;
};

/**
 * Places tables onto shards and splits batches into per-shard
 * sub-batches. The placement is mutable only through apply() so
 * rebalancing stays an explicit, observable step.
 */
class ShardRouter
{
  public:
    ShardRouter(unsigned shards, PlacementPolicy policy,
                const embedding::TableConfig &tables);

    unsigned shards() const { return shards_; }
    PlacementPolicy policy() const { return policy_; }
    const embedding::TableConfig &tables() const { return tables_; }

    /** Current table -> shard placement (size = numTables). */
    const std::vector<unsigned> &placement() const { return placement_; }

    unsigned
    shardOfTable(unsigned table) const
    {
        return placement_[table % tables_.numTables];
    }

    /** Shard of a flat index. Out-of-range indices (hostile input)
     *  wrap deterministically by table so the router never rejects —
     *  the layout and store tolerate any index. */
    unsigned
    shardOfIndex(IndexId index) const
    {
        return shardOfTable(tables_.tableOf(index));
    }

    /** One shard's slice of a batch: local query ids are dense 0..n-1
     *  in global query order, so the sub-batch is a valid Batch. */
    struct SubBatch
    {
        embedding::Batch batch;
        /** Local query id -> position of the query in the global
         *  batch. */
        std::vector<std::uint32_t> globalQuery;
    };

    /** A batch split across the shards. */
    struct SplitBatch
    {
        /** Indexed by shard; empty batches for untouched shards. */
        std::vector<SubBatch> perShard;
        /** Global per-query reference count (Mean's root divide). */
        std::vector<std::size_t> totalIndices;
        /** Queries whose indices span more than one shard. */
        std::size_t crossShardQueries = 0;

        std::size_t
        shardsTouched() const
        {
            std::size_t touched = 0;
            for (const SubBatch &s : perShard)
                touched += !s.batch.queries.empty();
            return touched;
        }
    };

    /** Split @p batch by the current placement. Pure function of the
     *  batch and the placement — deterministic and order-preserving
     *  (per-query index order survives within each shard). */
    SplitBatch split(const embedding::Batch &batch) const;

    /**
     * Max/mean per-shard load for @p refsPerTable (indexed by table;
     * 1.0 = perfectly balanced, like PreparedBatch::loadImbalance).
     */
    double imbalance(const std::vector<std::uint64_t> &refsPerTable) const;

    /**
     * Deterministic rebalance plan: while the load ratio is at or
     * above @p threshold, move the hottest table (ties -> lowest id)
     * off the hottest shard (ties -> lowest id) onto the coldest, up
     * to @p maxMoves moves (0 = one per shard). Pure function of
     * (placement, refsPerTable, threshold) — same inputs, same moves.
     * Does not mutate the placement; pass the plan to apply().
     */
    std::vector<ShardMove>
    rebalance(const std::vector<std::uint64_t> &refsPerTable,
              double threshold, unsigned maxMoves = 0) const;

    /** Apply a rebalance plan to the placement. */
    void apply(const std::vector<ShardMove> &moves);

  private:
    unsigned shards_;
    PlacementPolicy policy_;
    embedding::TableConfig tables_;
    std::vector<unsigned> placement_;
};

/** Shard-tier shape: per-shard pipeline config + combine-stage costs. */
struct ShardTierConfig
{
    /** Per-shard pipeline (engines = replicas *per shard*). */
    ServingConfig serving;
    unsigned shards = 2;
    PlacementPolicy placement = PlacementPolicy::Hash;
    /** The reduction the tier serves. Shard engines run Mean as Sum;
     *  the combiner applies the single root divide. */
    embedding::ReduceOp reduceOp = embedding::ReduceOp::Sum;
    /** Modeled cross-shard combine: fixed cost per multi-shard batch
     *  plus one vector-combine term per extra partial. */
    Tick combineFixed = 20 * kTicksPerNs;
    Tick combinePerVector = 8 * kTicksPerNs;
    /** Hot-shard alarm threshold on max/mean shard load (rebalance()
     *  moves tables once the observed ratio crosses it). */
    double rebalanceThreshold = 1.5;
};

/** One batch's trip through the sharded tier. */
struct ShardedBatchTrace
{
    std::size_t batch = 0;
    Tick arrival = 0;
    /** Last participating shard's writeback drain. */
    Tick shardsDone = 0;
    /** Cross-shard combine done (== shardsDone for 1-shard batches). */
    Tick combineDone = 0;
    unsigned shardsTouched = 0;
    /** Combined values in global query order (when the shard engines
     *  compute values; empty otherwise). */
    std::vector<embedding::Vector> results;
};

/** Aggregate outcome of a sharded serving run. */
struct ShardedReport
{
    std::vector<ShardedBatchTrace> batches;
    /** Per-shard pipeline reports (sub-batch streams). */
    std::vector<PipelineReport> perShard;
    std::vector<std::uint64_t> subBatchesPerShard;
    std::vector<std::uint64_t> refsPerShard;
    std::uint64_t crossShardQueries = 0;
    Tick combineBusy = 0;
    /** First arrival to last combine. */
    Tick makespan = 0;

    /** Max/mean per-shard references (1.0 = balanced). */
    double loadImbalance() const;

    double
    requestsPerSecond() const
    {
        return makespan == 0
            ? 0.0
            : static_cast<double>(batches.size()) *
                  static_cast<double>(kTicksPerSec) /
                  static_cast<double>(makespan);
    }
};

/**
 * Build @p shards replica groups of @p replicasPerShard event engines
 * each. @p config.reduceOp is rewritten Mean -> Sum (the tier owns the
 * root divide); everything else passes through.
 */
std::vector<std::vector<EngineReplica>>
makeShardReplicas(unsigned shards, unsigned replicasPerShard,
                  const ReplicaMemoryConfig &mem,
                  const embedding::TableConfig &tables,
                  EventEngineConfig config,
                  const embedding::EmbeddingStore *store);

/** The sharded scatter-gather serving tier. */
class ShardedServingTier
{
  public:
    /**
     * @param shardReplicas one replica group per shard (>= shards
     *        entries of >= serving.engines replicas each).
     * @param store when non-null, combined per-query values land in
     *        ShardedBatchTrace::results (the shard engines must have
     *        computeValues set — makeShardReplicas handles the op).
     */
    ShardedServingTier(const ShardTierConfig &config,
                       std::vector<std::vector<EngineReplica>> &shardReplicas,
                       const embedding::EmbeddingStore *store);

    /** Serve with inter-arrival gap (0 = all at once). */
    ShardedReport serve(const std::vector<embedding::Batch> &batches,
                        Tick arrivalGap, Tick start = 0);

    /** Serve at explicit arrival ticks (one per batch). */
    ShardedReport serve(const std::vector<embedding::Batch> &batches,
                        const std::vector<Tick> &arrivals);

    const ShardTierConfig &config() const { return config_; }
    ShardRouter &router() { return router_; }
    const ShardRouter &router() const { return router_; }

    /** Cumulative per-table reference counts across serve() calls —
     *  the rebalance hook's load signal. */
    const std::vector<std::uint64_t> &refsPerTable() const
    {
        return refsPerTable_;
    }

    /** Observed max/mean shard load over the accumulated counts. */
    double observedImbalance() const
    {
        return router_.imbalance(refsPerTable_);
    }

    /**
     * The deterministic rebalance hook: plan moves over the
     * accumulated per-table load at the configured threshold, apply
     * them to the router, and return the plan (empty when balanced).
     */
    std::vector<ShardMove> rebalance();

    /** Register tier + per-shard counters into @p group. */
    void registerStats(StatGroup &group);

    /** Per-shard rows (sub-batches, refs, load share, imbalance) plus
     *  the combine port, stacked on top of each shard's pipeline
     *  scoreboard machinery. */
    void printShardScoreboard(std::ostream &os,
                              const ShardedReport &report) const;

  private:
    ShardTierConfig config_;
    ShardRouter router_;
    std::vector<std::vector<EngineReplica>> &shardReplicas_;
    const embedding::EmbeddingStore *store_;
    /** One pipeline per shard, over shardReplicas_[s]. */
    std::vector<std::unique_ptr<ServingPipeline>> pipelines_;
    std::vector<std::uint64_t> refsPerTable_;

    Counter servedBatches_;
    Counter servedQueries_;
    Counter crossShardQueries_;
    Counter combineTicks_;
    Counter rebalanceMoves_;
    std::vector<std::unique_ptr<Counter>> perShardSubBatches_;
    std::vector<std::unique_ptr<Counter>> perShardRefs_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_SHARDING_HH
