/**
 * @file
 * Host-side batch preprocessing.
 *
 * Fafnir's software support (Section IV-B/IV-C): the host rearranges a
 * batch of queries into per-rank lists of memory reads and their flit
 * headers. In dedup mode (the paper's key mechanism) each *unique* index
 * of the batch is read exactly once; its header's `queries` field lists,
 * for every query containing it, the other indices of that query. In
 * no-dedup mode (the Figure 13 ablation) every (query, index) reference
 * issues its own read.
 */

#ifndef FAFNIR_FAFNIR_HOST_HH
#define FAFNIR_FAFNIR_HOST_HH

#include <cstddef>
#include <vector>

#include "embedding/layout.hh"
#include "embedding/query.hh"
#include "embedding/table.hh"
#include "fafnir/item.hh"
#include "fafnir/pool.hh"

namespace fafnir::core
{

/** One scheduled memory access feeding a leaf. */
struct RankRead
{
    IndexId index = 0;
    Addr address = 0;
    /** The flit injected into the tree when the data returns. */
    Item item;
};

/** A batch compiled into per-rank access lists. */
struct PreparedBatch
{
    /** Indexed by physical global rank. */
    std::vector<std::vector<RankRead>> rankReads;
    /** Distinct indices referenced by the batch. */
    std::size_t uniqueCount = 0;
    /** Total index references (with repetition). */
    std::size_t totalReferences = 0;
    /** Reads actually issued (== uniqueCount in dedup mode). */
    std::size_t accessCount = 0;
    /** Full index set per query, for the root combiner. */
    std::vector<IndexSet> querySets;

    /** Accesses saved relative to the reference stream (Figure 15). */
    double
    accessSavings() const
    {
        return totalReferences == 0
            ? 0.0
            : 1.0 - static_cast<double>(accessCount) /
                  static_cast<double>(totalReferences);
    }

    /** Largest per-rank access list (Figure 15's per-leaf-input metric). */
    std::size_t maxReadsPerRank() const;

    /**
     * Rank-load imbalance: max per-rank reads over the mean (1.0 =
     * perfectly balanced). Hot Zipfian batches without dedup hammer the
     * hot vectors' ranks; dedup flattens the load.
     */
    double loadImbalance() const;
};

/**
 * Compile @p batch into per-rank read lists.
 *
 * The hot-path entry: dedup uses a flat open-addressing hash sized from
 * the batch's reference count, then sorts the unique indices so the read
 * issue order (index-ascending, per-index query order = encounter order)
 * is bit-identical to the ordered-map reference below.
 *
 * @param pool when non-null, item value buffers are drawn from this
 *        arena instead of fresh allocations (the serving pipeline keeps
 *        one pool per pipeline slot and recycles the previous
 *        occupant's buffers). Contents are identical either way.
 */
PreparedBatch prepareBatch(const embedding::VectorLayout &layout,
                           const embedding::EmbeddingStore *store,
                           const embedding::Batch &batch, bool dedup,
                           VectorPool *pool = nullptr);

/**
 * Reference implementation of prepareBatch using an ordered map for the
 * dedup scan. Kept for differential testing and the micro_serving
 * prepare-throughput comparison; output is bit-identical to prepareBatch.
 */
PreparedBatch prepareBatchReference(const embedding::VectorLayout &layout,
                                    const embedding::EmbeddingStore *store,
                                    const embedding::Batch &batch,
                                    bool dedup, VectorPool *pool = nullptr);

/** Recycle @p prepared's item value buffers into @p pool. */
void releasePrepared(PreparedBatch &prepared, VectorPool &pool);

/** Compiles batches for the tree. */
class Host
{
  public:
    /**
     * @param layout vector placement (defines the rank of each index).
     * @param store when non-null, read items carry real vector values so
     *        the functional tree can validate end-to-end arithmetic.
     */
    Host(const embedding::VectorLayout &layout,
         const embedding::EmbeddingStore *store = nullptr)
        : layout_(layout), store_(store)
    {}

    /**
     * Compile @p batch.
     * @param dedup read each unique index once (Section IV-C) or issue
     *        one read per reference (the Figure 13 ablation).
     */
    PreparedBatch prepare(const embedding::Batch &batch, bool dedup) const;

  private:
    const embedding::VectorLayout &layout_;
    const embedding::EmbeddingStore *store_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_HOST_HH
