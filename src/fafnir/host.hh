/**
 * @file
 * Host-side batch preprocessing.
 *
 * Fafnir's software support (Section IV-B/IV-C): the host rearranges a
 * batch of queries into per-rank lists of memory reads and their flit
 * headers. In dedup mode (the paper's key mechanism) each *unique* index
 * of the batch is read exactly once; its header's `queries` field lists,
 * for every query containing it, the other indices of that query. In
 * no-dedup mode (the Figure 13 ablation) every (query, index) reference
 * issues its own read.
 */

#ifndef FAFNIR_FAFNIR_HOST_HH
#define FAFNIR_FAFNIR_HOST_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "embedding/layout.hh"
#include "embedding/query.hh"
#include "embedding/quantize.hh"
#include "embedding/table.hh"
#include "fafnir/item.hh"
#include "fafnir/pool.hh"

namespace fafnir::core
{

/** One scheduled memory access feeding a leaf. */
struct RankRead
{
    IndexId index = 0;
    Addr address = 0;
    /** The flit injected into the tree when the data returns. */
    Item item;
};

/** A batch compiled into per-rank access lists. */
struct PreparedBatch
{
    /** Indexed by physical global rank. */
    std::vector<std::vector<RankRead>> rankReads;
    /** Distinct indices referenced by the batch. */
    std::size_t uniqueCount = 0;
    /** Total index references (with repetition). */
    std::size_t totalReferences = 0;
    /** Reads actually issued (== uniqueCount in dedup mode). */
    std::size_t accessCount = 0;
    /** Full index set per query, for the root combiner. */
    std::vector<IndexSet> querySets;
    /**
     * Payload encoding the batch was compiled for. Item values are
     * round-tripped through this format at the leaf (quantize once,
     * dequantize immediately — exact fp32 partials up the tree), and
     * the engines charge this format's byte width on every DRAM read
     * and PE-link transfer.
     */
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32;

    /** Modelled payload bytes of one vector under this batch's format. */
    std::size_t
    vectorPayloadBytes(unsigned dim) const
    {
        return embedding::payloadBytes(payload, dim);
    }

    /** Accesses saved relative to the reference stream (Figure 15). */
    double
    accessSavings() const
    {
        return totalReferences == 0
            ? 0.0
            : 1.0 - static_cast<double>(accessCount) /
                  static_cast<double>(totalReferences);
    }

    /** Largest per-rank access list (Figure 15's per-leaf-input metric). */
    std::size_t maxReadsPerRank() const;

    /**
     * Rank-load imbalance: max per-rank reads over the mean (1.0 =
     * perfectly balanced). Hot Zipfian batches without dedup hammer the
     * hot vectors' ranks; dedup flattens the load.
     */
    double loadImbalance() const;
};

/**
 * Compile @p batch into per-rank read lists.
 *
 * The hot-path entry: dedup uses a flat open-addressing hash sized from
 * the batch's reference count, then sorts the unique indices so the read
 * issue order (index-ascending, per-index query order = encounter order)
 * is bit-identical to the ordered-map reference below.
 *
 * @param pool when non-null, item value buffers are drawn from this
 *        arena instead of fresh allocations (the serving pipeline keeps
 *        one pool per pipeline slot and recycles the previous
 *        occupant's buffers). Contents are identical either way.
 * @param payload transport encoding: non-fp32 formats round-trip every
 *        leaf value through embedding::payloadRoundTrip, so the served
 *        values are a pure function of (store, format) — deterministic
 *        at any worker count.
 */
PreparedBatch prepareBatch(
    const embedding::VectorLayout &layout,
    const embedding::EmbeddingStore *store, const embedding::Batch &batch,
    bool dedup, VectorPool *pool = nullptr,
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32);

/**
 * Reference implementation of prepareBatch using an ordered map for the
 * dedup scan. Kept for differential testing and the micro_serving
 * prepare-throughput comparison; output is bit-identical to prepareBatch.
 */
PreparedBatch prepareBatchReference(
    const embedding::VectorLayout &layout,
    const embedding::EmbeddingStore *store, const embedding::Batch &batch,
    bool dedup, VectorPool *pool = nullptr,
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32);

/** Recycle @p prepared's item value buffers into @p pool. */
void releasePrepared(PreparedBatch &prepared, VectorPool &pool);

/**
 * Multi-worker host prepare pool.
 *
 * Shards the dedup scan by index: worker s scans the whole batch but
 * claims only the references whose index hashes into its shard, so the
 * shards partition the unique-index set and never contend. A serial
 * merge sorts the claimed entries by index, then the emit phase splits
 * the sorted entries into contiguous chunks — per-rank concatenation in
 * chunk order therefore reproduces the index-ascending read order of
 * prepareBatch/prepareBatchReference exactly, making the output
 * bit-identical at any worker count.
 *
 * Determinism notes:
 *  - The shard of an index depends only on its hash and the worker
 *    count, never on thread schedule.
 *  - Value buffers come from per-chunk VectorPools (SlotArenas.pools),
 *    so buffer ownership is chunk-deterministic even though chunks run
 *    on arbitrary pool threads.
 *  - When a fault plan is installed the pool clamps to the serial
 *    prepareBatch path (the plan's RNG and the pool_exhaust hook are
 *    not thread-safe); outputs stay identical because the sharded path
 *    is bit-identical to the serial one.
 *
 * recycleAsync() returns the previous slot occupant's buffers on a pool
 * thread so slot turnaround overlaps the next batch's prepare; the next
 * prepare() on the same SlotArenas waits for that recycle first.
 */
class PreparePool
{
  public:
    /** Per-pipeline-slot recycling state: one VectorPool per emit chunk
     *  plus the in-flight async recycle of the slot's previous batch. */
    struct SlotArenas
    {
        std::vector<VectorPool> pools;
        WorkerPool::TaskHandle pendingRecycle;
    };

    /** @p workers total prepare workers (>= 1; 1 = serial, no pool). */
    explicit PreparePool(unsigned workers);
    ~PreparePool();

    PreparePool(const PreparePool &) = delete;
    PreparePool &operator=(const PreparePool &) = delete;

    unsigned workers() const { return workers_; }

    /** Arenas for one pipeline slot (pools sized to workers()). */
    SlotArenas makeSlotArenas() const;

    /**
     * Compile @p batch; bit-identical to prepareBatch at any worker
     * count. With @p arenas, waits for the slot's pending recycle and
     * draws value buffers from its per-chunk pools.
     */
    PreparedBatch
    prepare(const embedding::VectorLayout &layout,
            const embedding::EmbeddingStore *store,
            const embedding::Batch &batch, bool dedup,
            SlotArenas *arenas = nullptr,
            embedding::PayloadFormat payload =
                embedding::PayloadFormat::Fp32);

    /** Recycle @p prepared's buffers into @p arenas off-thread (inline
     *  when serial or when a fault plan is installed). */
    void recycleAsync(PreparedBatch &&prepared, SlotArenas &arenas);

    /** Block until @p arenas' pending recycle (if any) completes. Call
     *  before destroying the arenas or reading their pool stats. */
    void waitRecycle(SlotArenas &arenas);

    /** Per-worker shard/emit counters plus pool-level totals. */
    void registerStats(StatGroup &group);

  private:
    struct WorkerStats
    {
        /** Unique indices this worker's shard claimed (dedup scans). */
        Counter claimed;
        /** Reads emitted by this worker's chunk of the emit phase. */
        Counter reads;
    };

    PreparedBatch prepareSharded(const embedding::VectorLayout &layout,
                                 const embedding::EmbeddingStore *store,
                                 const embedding::Batch &batch, bool dedup,
                                 SlotArenas *arenas,
                                 embedding::PayloadFormat payload);

    static void recycleInto(PreparedBatch &prepared,
                            std::vector<VectorPool> &pools);

    unsigned workers_ = 1;
    std::vector<WorkerStats> workerStats_;
    Counter batches_;
    Counter serialFallbacks_;
    Counter asyncRecycles_;
    /** Null when workers_ == 1 (pure serial, no thread machinery). */
    std::unique_ptr<WorkerPool> pool_;
};

/** Compiles batches for the tree. */
class Host
{
  public:
    /**
     * @param layout vector placement (defines the rank of each index).
     * @param store when non-null, read items carry real vector values so
     *        the functional tree can validate end-to-end arithmetic.
     */
    Host(const embedding::VectorLayout &layout,
         const embedding::EmbeddingStore *store = nullptr)
        : layout_(layout), store_(store)
    {}

    /**
     * Compile @p batch.
     * @param dedup read each unique index once (Section IV-C) or issue
     *        one read per reference (the Figure 13 ablation).
     * @param payload transport encoding (leaf values round-tripped).
     */
    PreparedBatch prepare(const embedding::Batch &batch, bool dedup,
                          embedding::PayloadFormat payload =
                              embedding::PayloadFormat::Fp32) const;

  private:
    const embedding::VectorLayout &layout_;
    const embedding::EmbeddingStore *store_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_HOST_HH
