/**
 * @file
 * Flits flowing through the reduction tree.
 *
 * An Item is one entry of a PE input/output buffer: a value (the partial
 * reduction) plus its header. The header's `indices` field records which
 * embedding vectors the value already sums; the `queries` field lists, for
 * every query that still wants this value, the indices of that query that
 * have NOT been folded in yet (the paper's example header
 * [indices:50,11 | queries:94,26]). We keep the owning query id explicit
 * per residual — the hardware encodes it positionally, the semantics are
 * identical — so the root can route finished vectors to their queries.
 *
 * Invariant (checked in debug paths): for every residual r of an item,
 * r.remaining is disjoint from header.indices, and
 * header.indices ∪ r.remaining equals the full index set of query r.query.
 */

#ifndef FAFNIR_FAFNIR_ITEM_HH
#define FAFNIR_FAFNIR_ITEM_HH

#include <string>

#include "common/smallvec.hh"
#include "common/types.hh"
#include "embedding/table.hh"
#include "fafnir/indexset.hh"

namespace fafnir::core
{

/** One query's view of an item: what it still needs. */
struct QueryResidual
{
    QueryId query = 0;
    /** Indices of the query not yet included in the item's value. */
    IndexSet remaining;

    bool operator==(const QueryResidual &other) const = default;
};

/** One buffer entry: value + header. */
struct Item
{
    /** Vectors already reduced into `value` (the header's indices field). */
    IndexSet indices;
    /**
     * Queries that still want this value (the header's queries field).
     * Two inline slots: most items carry one residual (their own query)
     * and pick up more only when the merge unit folds headers together.
     */
    SmallVec<QueryResidual, 2> queries;
    /**
     * The partial reduction. Empty in timing-only runs; the functional
     * model always populates it.
     */
    embedding::Vector value;

    /** Ids of the queries this item belongs to (attribution tags). */
    SmallVec<QueryId, 2>
    queryIds() const
    {
        SmallVec<QueryId, 2> ids;
        for (const auto &r : queries)
            ids.push_back(r.query);
        return ids;
    }

    /** Residual for @p query, or nullptr. */
    const QueryResidual *
    findQuery(QueryId query) const
    {
        for (const auto &r : queries)
            if (r.query == query)
                return &r;
        return nullptr;
    }

    /** True once some query is fully reduced in this item. */
    bool
    completesAnyQuery() const
    {
        for (const auto &r : queries)
            if (r.remaining.empty())
                return true;
        return false;
    }

    /** Header bytes on the wire: 5-bit ids, ceil(bits/8) per field set. */
    std::size_t
    headerBits(unsigned bits_per_index) const
    {
        std::size_t total = indices.size() * bits_per_index;
        for (const auto &r : queries)
            total += r.remaining.size() * bits_per_index;
        return total;
    }

    std::string toString() const;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_ITEM_HH
