/**
 * @file
 * Pipelined multi-engine serving front-end.
 *
 * The single-engine service model (src/embedding/service.hh) keeps one
 * batch in flight: host prepare, tree execution, and result writeback
 * serialize, so offered-load capacity is bounded by the *sum* of the
 * stage times instead of the slowest stage. RecNMP and TensorDIMM both
 * scale recommendation inference by exploiting device-level parallelism
 * across concurrent requests; this module does the same for the Fafnir
 * tree:
 *
 *   batcher -> [prepare] -> dispatch queue -> [engine 0..N-1] -> writeback
 *
 * Stages are connected by bounded slots so the host prepare of batch
 * k+1 overlaps the tree execution of batch k (double-buffered
 * PreparedBatches; each pipeline slot recycles its value buffers
 * through per-slot VectorPool arenas), and a work-conserving
 * dispatcher shards independent batches across N identical engine
 * replicas (least-loaded or round-robin, pluggable).
 *
 * Host prepare itself runs on a PreparePool of prepareWorkers threads
 * (sharded dedup + chunked emit, bit-identical to the serial path at
 * any worker count), and a slot's arena recycling is handed to a pool
 * thread when its batch completes — slot turnaround is off the
 * writeback path, so a slot frees at engine completion rather than
 * writeback drain.
 *
 * The *simulated* stage timing stays single-threaded tick arithmetic:
 * the modeled prepare cost divides the per-reference term by the
 * worker count (plus a per-shard merge overhead), which keeps served
 * values and all simulated metrics bit-identical at any replica count,
 * pipeline depth, and worker count (the conformance suite pins this,
 * including under an installed fault plan).
 *
 * Hedged requests (ROADMAP): with hedgePct > 0, a batch whose primary
 * engine run exceeds the running p-th percentile of observed service
 * times gets a backup issued to a second replica at the moment the
 * percentile elapsed; the first completion wins (counters:
 * hedgesIssued, hedgesWon). Values cannot diverge — replicas are
 * identical — so hedging is purely a tail-latency mechanism.
 */

#ifndef FAFNIR_FAFNIR_SERVING_HH
#define FAFNIR_FAFNIR_SERVING_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/memsystem.hh"
#include "sim/eventq.hh"
#include "embedding/layout.hh"
#include "embedding/query.hh"
#include "embedding/table.hh"
#include "fafnir/event_engine.hh"
#include "fafnir/host.hh"
#include "fafnir/pool.hh"

namespace fafnir::core
{

/** How the dispatcher picks an engine for the next prepared batch. */
enum class DispatchPolicy
{
    /** Engine k % N — oblivious, perfectly fair under uniform load. */
    RoundRobin,
    /** Engine that frees up earliest — work-conserving under skew. */
    LeastLoaded,
};

/** Serving-pipeline shape and modeled host-stage costs. */
struct ServingConfig
{
    /** Engine replicas (N identical tree+memory instances). */
    unsigned engines = 1;
    /** Prepared batches admitted beyond the one executing (1 = the
     *  serial rhythm, 2 = double-buffered prepare/execute overlap). */
    unsigned pipelineDepth = 2;
    DispatchPolicy dispatch = DispatchPolicy::LeastLoaded;
    /**
     * Hedge percentile in (0, 100]; 0 disables. A batch still running
     * when its service time passes the running p-th percentile gets a
     * backup on a second engine; first completion wins.
     */
    double hedgePct = 0.0;
    /** Minimum completed batches before hedging engages (the running
     *  percentile is noise until the history has mass). */
    std::size_t hedgeWarmup = 8;
    /** Read each unique index once (Section IV-C). */
    bool dedup = true;
    /** Host prepare workers (>= 1). The real PreparePool shards the
     *  dedup scan across this many threads; the modeled cost divides
     *  the per-reference term by the same count. */
    unsigned prepareWorkers = 1;
    /** Transport payload encoding for prepared batches (leaf values
     *  round-tripped; engines charge this format's byte widths). */
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32;
    /**
     * Modeled host prepare cost:
     *
     *   prepareFixed + preparePerReference * refs / prepareWorkers
     *                + prepareShardOverhead * (prepareWorkers - 1)
     *
     * The flat open-addressing dedup is one probe + one link append
     * per reference and the sharded scan divides that work across
     * workers; the shard overhead term charges the serial merge + sort
     * of each extra shard's claimed entries (micro_serving measures
     * the wall-clock analogue of both). The constants are calibrated
     * so a 1-worker prepare of a 384-reference batch costs ~292 ns —
     * the same as the pre-pool model — and scaling to 4 workers is
     * ~3x, matching the sharded scan's measured behavior.
     */
    Tick prepareFixed = 40 * kTicksPerNs;
    Tick preparePerReference = 655;
    Tick prepareShardOverhead = 4 * kTicksPerNs;
    /** Modeled writeback cost per served query vector (post-recycle
     *  overlap, writeback only drains result rows host-side). */
    Tick writebackPerQuery = 10 * kTicksPerNs;
};

/** One batch's trip through the pipeline. */
struct ServedBatchTrace
{
    std::size_t batch = 0;
    /** Engine whose completion was delivered (the hedge winner). */
    unsigned engine = 0;
    bool hedged = false;
    bool hedgeWon = false;
    Tick arrival = 0;
    Tick prepareStart = 0;
    Tick prepareDone = 0;
    /** Engine issue tick (after any dispatch-queue wait). */
    Tick started = 0;
    /** Winning engine completion. */
    Tick complete = 0;
    /** Writeback drain (results landed host-side). */
    Tick done = 0;
    /** Attribution ordinal the engine drew for this batch (valid when
     *  a collector was installed during the run; the sharded tier uses
     *  it to back-annotate the cross-shard combine stage). */
    std::uint64_t attribBatch = 0;
    /** Timing (and values, when computed) of the winning run. */
    EventLookupTiming timing;
};

/** Aggregate outcome of a pipelined serving run. */
struct PipelineReport
{
    std::vector<ServedBatchTrace> batches;
    std::uint64_t hedgesIssued = 0;
    std::uint64_t hedgesWon = 0;
    /** First arrival to last writeback. */
    Tick makespan = 0;
    std::vector<std::uint64_t> batchesPerEngine;
    /** Execute ticks per engine, including losing hedge backups. */
    std::vector<Tick> busyTicksPerEngine;
    /** Stage busy totals for the health scoreboard. */
    Tick prepareBusy = 0;
    Tick dispatchWait = 0;
    Tick writebackBusy = 0;

    double
    requestsPerSecond() const
    {
        return makespan == 0
            ? 0.0
            : static_cast<double>(batches.size()) *
                  static_cast<double>(kTicksPerSec) /
                  static_cast<double>(makespan);
    }
};

/**
 * One engine replica: its own event queue, memory system, layout, and
 * event-driven engine over identical geometry, so any replica produces
 * bit-identical values for the same prepared batch.
 */
struct EngineReplica
{
    std::unique_ptr<EventQueue> eventq;
    std::unique_ptr<dram::MemorySystem> memory;
    std::unique_ptr<embedding::VectorLayout> layout;
    std::unique_ptr<EventDrivenEngine> engine;
};

/** Memory-system shape shared by every replica. */
struct ReplicaMemoryConfig
{
    dram::Geometry geometry = dram::Geometry::withTotalRanks(32);
    dram::Timing timing = dram::Timing::ddr4_2400();
    dram::Interleave interleave = dram::Interleave::BlockRank;
    unsigned blockBytes = 512;
};

/** Build @p count identical replicas. */
std::vector<EngineReplica>
makeEventReplicas(unsigned count, const ReplicaMemoryConfig &mem,
                  const embedding::TableConfig &tables,
                  const EventEngineConfig &config,
                  const embedding::EmbeddingStore *store);

/** The pipelined, sharded serving front-end. */
class ServingPipeline
{
  public:
    /**
     * @param replicas identically-configured engines (>= config.engines
     *        entries; extras are ignored).
     * @param store when non-null, prepared items carry real values so
     *        the engines can compute served vectors.
     */
    ServingPipeline(const ServingConfig &config,
                    std::vector<EngineReplica> &replicas,
                    const embedding::EmbeddingStore *store);

    /**
     * Serve @p batches with inter-arrival gap @p arrivalGap (open loop:
     * batch k arrives at start + k * gap; 0 = all at once).
     */
    PipelineReport serve(const std::vector<embedding::Batch> &batches,
                         Tick arrivalGap, Tick start = 0);

    /**
     * Serve @p batches at explicit arrival ticks (non-decreasing; one
     * per batch) — the open-loop generator for time-varying load
     * (steady/burst/ramp phases). When a windowed telemetry engine or
     * SLO monitor is installed, every batch feeds per-stage windowed
     * metrics and per-query latency/availability SLIs.
     */
    PipelineReport serve(const std::vector<embedding::Batch> &batches,
                         const std::vector<Tick> &arrivals);

    /** Register pipeline + per-engine counters into @p group. */
    void registerStats(StatGroup &group);

    /**
     * Per-stage / per-replica health scoreboard over one run: windowed
     * queue wait, utilization, hedge rate, prepared-slot occupancy, and
     * fault/SLO context when the corresponding globals are installed.
     * Windowed columns read the installed telemetry::timeseries() and
     * print "-" when none is installed.
     */
    void printHealthScoreboard(std::ostream &os,
                               const PipelineReport &report) const;

    const ServingConfig &config() const { return config_; }

    /** Per-slot arena counters, aggregated across the slot's per-chunk
     *  pools (asserting buffer reuse in tests). Call after serve() —
     *  the run's pending recycles are drained by then. */
    std::vector<VectorPool::Stats>
    slotPoolStats() const
    {
        std::vector<VectorPool::Stats> stats;
        stats.reserve(slotArenas_.size());
        for (const auto &arenas : slotArenas_) {
            VectorPool::Stats sum;
            for (const auto &pool : arenas.pools) {
                sum.acquires += pool.stats().acquires;
                sum.reuses += pool.stats().reuses;
                sum.releases += pool.stats().releases;
                sum.exhaustions += pool.stats().exhaustions;
            }
            stats.push_back(sum);
        }
        return stats;
    }

  private:
    unsigned pickEngine(std::size_t batchOrdinal,
                        const std::vector<Tick> &engineFree) const;
    /** Running p-th percentile of completed service times. */
    Tick serviceP(double pct) const;

    ServingConfig config_;
    std::vector<EngineReplica> &replicas_;
    const embedding::EmbeddingStore *store_;
    /** Per-slot value-buffer arenas (index = batch % pipelineDepth).
     *  Declared before preparePool_: the pool's destructor drains any
     *  async recycle still referencing an arena. */
    std::vector<PreparePool::SlotArenas> slotArenas_;
    /** The multi-worker host prepare pool (workers from config). */
    std::unique_ptr<PreparePool> preparePool_;
    /** Completed service times (started -> complete), for hedging. */
    std::vector<Tick> serviceHistory_;

    Counter servedBatches_;
    Counter servedQueries_;
    Counter hedgesIssued_;
    Counter hedgesWon_;
    Counter prepareTicks_;
    Counter dispatchWaitTicks_;
    std::vector<std::unique_ptr<Counter>> perEngineBatches_;
    std::vector<std::unique_ptr<Counter>> perEngineBusyTicks_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_SERVING_HH
