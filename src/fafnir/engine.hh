/**
 * @file
 * Cycle-level timing engine for Fafnir embedding lookup.
 *
 * Reads flow through the DDR4 model into the leaf PEs (Destination::Ndp —
 * rank-internal buses, no channel-bus crossing), the per-PE traces of the
 * functional evaluator are replayed with Table-IV latencies attached, and
 * finished query vectors serialize on the root-to-host link. The engine
 * reports the Figure 11 latency breakdown (memory vs computation), the
 * Figure 13 throughput inputs, and the Figure 15 access counts.
 */

#ifndef FAFNIR_FAFNIR_ENGINE_HH
#define FAFNIR_FAFNIR_ENGINE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/memsystem.hh"
#include "embedding/layout.hh"
#include "embedding/query.hh"
#include "fafnir/functional.hh"
#include "fafnir/host.hh"
#include "fafnir/pe.hh"
#include "fafnir/scheduler.hh"
#include "fafnir/tree.hh"

namespace fafnir::core
{

/** Engine parameters. */
struct EngineConfig
{
    PeLatency latency;
    /** PE clock (the paper's FPGA implementation runs at 200 MHz). */
    double peClockMhz = 200.0;
    /** Root-to-host link bandwidth for result vectors. */
    double rootLinkGBs = 25.6;
    /** Parallel root-to-host links (the `c` of Section IV-A's
     *  (2m-2)+c connection count — one per consuming core). */
    unsigned hostLinks = 1;
    /** Host-side cost of landing one finished query vector (a single
     *  well-known attach point, cheaper than scattered NDP partials). */
    Tick hostReceiveOverhead = 20 * kTicksPerNs;
    /** Read each unique index once (Section IV-C mechanism). */
    bool dedup = true;
    /**
     * Hardware batch capacity B (buffer entries and compute units per PE,
     * Table I). Software batches larger than this are served as several
     * hardware sub-batches (Section IV-B).
     */
    unsigned hwBatch = 32;
    /** Tree scale: ranks per leaf PE (1, 2, or 4 per Section IV-B). */
    unsigned ranksPerLeafPe = 2;
    /**
     * Extra cycles when a flit crosses between fabricated chips — from a
     * DIMM/rank node's top PE to the channel node (Figure 4a's physical
     * packaging). Intra-chip hops are free beyond the PE pipeline.
     */
    Cycles interNodeLinkCycles = 2;
    /** Tree levels contained in the channel-node chip (log2 channels). */
    unsigned channelNodeLevels = 2;
    /** Per-rank read issue order at the root's request decoder. */
    ReadOrder readOrder = ReadOrder::InOrder;
    /**
     * Interactive processing (Section IV-C): queries are served one at a
     * time; PEs only forward or reduce, skipping the batch comparisons,
     * and the host performs no cross-query dedup.
     */
    bool interactive = false;
    /**
     * Transport payload encoding. Non-fp32 formats shrink every DRAM
     * read and PE-link/root-link transfer to the format's byte width
     * (and round-trip leaf values through the quantizer — see
     * PreparedBatch::payload); fp32 is the exact path and the default.
     */
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32;
};

/** Timing of one batch lookup. */
struct LookupTiming
{
    Tick issued = 0;
    /** First data beat delivered by DRAM. */
    Tick memFirst = 0;
    /** Last vector fully gathered from DRAM. */
    Tick memLast = 0;
    /** Last query vector delivered to the host. */
    Tick complete = 0;
    std::size_t memAccesses = 0;
    std::size_t uniqueCount = 0;
    std::size_t totalReferences = 0;
    std::size_t rootCombines = 0;
    std::size_t maxPeOutputs = 0;
    /** Batches whose peak PE occupancy exceeded the hardware batch size
     *  (served as several hardware sub-batches; see Section IV-B). */
    std::size_t bufferOverflows = 0;
    /** Payload encoding the batch travelled in. */
    embedding::PayloadFormat payload = embedding::PayloadFormat::Fp32;
    /** Modelled payload bytes read from DRAM (accesses x format width). */
    std::uint64_t dramPayloadBytes = 0;
    /** Modelled payload bytes over PE links and the root-to-host link
     *  (one vector payload per traced PE output). */
    std::uint64_t linkPayloadBytes = 0;
    PeActivity activity;
    /** Completion tick of each query. */
    std::vector<Tick> queryComplete;

    Tick memoryTime() const { return memLast - issued; }
    Tick computeTime() const { return complete - memLast; }
    Tick totalTime() const { return complete - issued; }
};

/** Fafnir lookup accelerator model. */
class FafnirEngine
{
  public:
    FafnirEngine(dram::MemorySystem &memory,
                 const embedding::VectorLayout &layout,
                 const EngineConfig &config);

    /** Run one batch starting at @p start. */
    LookupTiming lookup(const embedding::Batch &batch, Tick start);

    /**
     * Run one pre-compiled batch starting at @p start (serving-pipeline
     * entry; prepare happened upstream). By reference: read scheduling
     * reorders the per-rank lists in place (idempotently); the caller
     * keeps ownership of the value buffers.
     */
    LookupTiming lookupPrepared(PreparedBatch &prepared, Tick start);

    /**
     * Run @p batches back to back (memory-pipelined: a batch's reads are
     * admitted as soon as the memory system can take them, and root
     * deliveries stay ordered). Returns the per-batch timings.
     */
    std::vector<LookupTiming>
    lookupMany(const std::vector<embedding::Batch> &batches, Tick start);

    const EngineConfig &config() const { return config_; }
    const TreeTopology &topology() const { return topology_; }

    /** Register cumulative engine counters with @p group. */
    void registerStats(StatGroup &group) const;

    /** @{ Cumulative counters across all lookups on this engine. */
    std::uint64_t servedBatches() const { return batches_.value(); }
    std::uint64_t servedQueries() const { return queries_.value(); }
    std::uint64_t issuedReads() const { return reads_.value(); }
    /** @} */

  private:
    LookupTiming runPrepared(const PreparedBatch &prepared, Tick start,
                             Tick min_complete);

    dram::MemorySystem &memory_;
    const embedding::VectorLayout &layout_;
    EngineConfig config_;
    TreeTopology topology_;
    Host host_;
    FunctionalTree tree_;
    Tick pePeriod_;

    Counter batches_;
    Counter queries_;
    Counter reads_;
    Counter reduces_;
    Counter forwards_;
    Counter rootCombines_;
    Counter bufferOverflows_;
    Counter dramPayloadBytes_;
    Counter linkPayloadBytes_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_ENGINE_HH
