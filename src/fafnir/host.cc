/**
 * @file
 * Implementation of host-side batch compilation.
 */

#include "host.hh"

#include <algorithm>
#include <map>

#include "common/debug.hh"
#include "common/logging.hh"

namespace fafnir::core
{

std::size_t
PreparedBatch::maxReadsPerRank() const
{
    std::size_t max_reads = 0;
    for (const auto &reads : rankReads)
        max_reads = std::max(max_reads, reads.size());
    return max_reads;
}

double
PreparedBatch::loadImbalance() const
{
    if (rankReads.empty() || accessCount == 0)
        return 1.0;
    const double mean = static_cast<double>(accessCount) /
                        static_cast<double>(rankReads.size());
    return static_cast<double>(maxReadsPerRank()) / mean;
}

PreparedBatch
Host::prepare(const embedding::Batch &batch, bool dedup) const
{
    batch.check();

    PreparedBatch prepared;
    prepared.rankReads.resize(layout_.mapper().geometry().totalRanks());
    prepared.totalReferences = batch.totalIndices();
    prepared.querySets.reserve(batch.size());
    for (const auto &q : batch.queries)
        prepared.querySets.emplace_back(q.indices);

    auto make_read = [&](IndexId index,
                         SmallVec<QueryResidual, 2> queries) {
        RankRead read;
        read.index = index;
        read.address = layout_.addressOf(index);
        read.item.indices = IndexSet::single(index);
        read.item.queries = std::move(queries);
        if (store_)
            read.item.value = store_->vector(index);
        const unsigned rank = layout_.rankOf(index);
        prepared.rankReads[rank].push_back(std::move(read));
        ++prepared.accessCount;
    };

    // Distinct indices, and which queries reference each (ordered map for
    // deterministic read issue order).
    std::map<IndexId, std::vector<QueryId>> users;
    for (const auto &q : batch.queries)
        for (IndexId index : q.indices)
            users[index].push_back(q.id);
    prepared.uniqueCount = users.size();

    if (dedup) {
        for (const auto &[index, queries] : users) {
            SmallVec<QueryResidual, 2> residuals;
            residuals.reserve(queries.size());
            const IndexSet self = IndexSet::single(index);
            for (QueryId q : queries)
                residuals.push_back({q, prepared.querySets[q].minus(self)});
            make_read(index, std::move(residuals));
        }
    } else {
        for (const auto &q : batch.queries) {
            for (IndexId index : q.indices) {
                const IndexSet self = IndexSet::single(index);
                make_read(index,
                          {{q.id, prepared.querySets[q.id].minus(self)}});
            }
        }
    }

    FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                   " queries: ", prepared.accessCount, " reads for ",
                   prepared.totalReferences, " references (dedup=",
                   dedup, ", imbalance=", prepared.loadImbalance(), ")");
    return prepared;
}

} // namespace fafnir::core
