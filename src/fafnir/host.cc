/**
 * @file
 * Implementation of host-side batch compilation.
 */

#include "host.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>

#include "common/debug.hh"
#include "common/logging.hh"

namespace fafnir::core
{

std::size_t
PreparedBatch::maxReadsPerRank() const
{
    std::size_t max_reads = 0;
    for (const auto &reads : rankReads)
        max_reads = std::max(max_reads, reads.size());
    return max_reads;
}

double
PreparedBatch::loadImbalance() const
{
    if (rankReads.empty() || accessCount == 0)
        return 1.0;
    const double mean = static_cast<double>(accessCount) /
                        static_cast<double>(rankReads.size());
    return static_cast<double>(maxReadsPerRank()) / mean;
}

namespace
{

/** Shared skeleton: everything but the dedup scan itself. */
struct PrepareContext
{
    const embedding::VectorLayout &layout;
    const embedding::EmbeddingStore *store;
    VectorPool *pool;
    PreparedBatch prepared;

    PrepareContext(const embedding::VectorLayout &lay,
                   const embedding::EmbeddingStore *st,
                   const embedding::Batch &batch, VectorPool *pl)
        : layout(lay), store(st), pool(pl)
    {
        batch.check();
        prepared.rankReads.resize(lay.mapper().geometry().totalRanks());
        prepared.totalReferences = batch.totalIndices();
        prepared.querySets.reserve(batch.size());
        for (const auto &q : batch.queries)
            prepared.querySets.emplace_back(q.indices);
    }

    void
    makeRead(IndexId index, SmallVec<QueryResidual, 2> queries)
    {
        RankRead read;
        read.index = index;
        read.address = layout.addressOf(index);
        read.item.indices = IndexSet::single(index);
        read.item.queries = std::move(queries);
        if (store) {
            if (pool) {
                const unsigned dim = store->config().dim();
                read.item.value = pool->acquire(dim);
                for (unsigned e = 0; e < dim; ++e)
                    read.item.value[e] = store->element(index, e);
            } else {
                read.item.value = store->vector(index);
            }
        }
        const unsigned rank = layout.rankOf(index);
        prepared.rankReads[rank].push_back(std::move(read));
        ++prepared.accessCount;
    }

    void
    emitDedupRead(IndexId index, const QueryId *users, std::size_t count)
    {
        SmallVec<QueryResidual, 2> residuals;
        residuals.reserve(count);
        const IndexSet self = IndexSet::single(index);
        for (std::size_t i = 0; i < count; ++i) {
            const QueryId q = users[i];
            residuals.push_back({q, prepared.querySets[q].minus(self)});
        }
        makeRead(index, std::move(residuals));
    }

    void
    emitNoDedup(const embedding::Batch &batch)
    {
        // uniqueCount is still reported in no-dedup mode (it is the
        // denominator of the Figure 13/15 comparisons).
        std::vector<IndexId> distinct;
        distinct.reserve(prepared.totalReferences);
        for (const auto &q : batch.queries)
            distinct.insert(distinct.end(), q.indices.begin(),
                            q.indices.end());
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        prepared.uniqueCount = distinct.size();

        for (const auto &q : batch.queries) {
            for (IndexId index : q.indices) {
                const IndexSet self = IndexSet::single(index);
                makeRead(index,
                         {{q.id, prepared.querySets[q.id].minus(self)}});
            }
        }
    }
};

constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();

std::size_t
hashCapacityFor(std::size_t references)
{
    // Load factor <= 0.5: capacity = next pow2 >= 2 * references.
    std::size_t cap = 16;
    while (cap < references * 2)
        cap <<= 1;
    return cap;
}

} // namespace

PreparedBatch
prepareBatch(const embedding::VectorLayout &layout,
             const embedding::EmbeddingStore *store,
             const embedding::Batch &batch, bool dedup, VectorPool *pool)
{
    PrepareContext ctx(layout, store, batch, pool);
    if (!dedup) {
        ctx.emitNoDedup(batch);
        FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                       " queries: ", ctx.prepared.accessCount, " reads for ",
                       ctx.prepared.totalReferences,
                       " references (dedup=false, imbalance=",
                       ctx.prepared.loadImbalance(), ")");
        return std::move(ctx.prepared);
    }

    // Flat open-addressing dedup, sized from the batch's reference count
    // (Batch::totalIndices upper-bounds the unique count). Per-index
    // query lists are kept as a chain through `links` so insertion never
    // allocates; a final sort of the entry table restores the
    // index-ascending issue order of the ordered-map reference.
    struct Entry
    {
        IndexId index;
        std::uint32_t head;
        std::uint32_t tail;
        std::uint32_t count;
    };
    struct Link
    {
        QueryId query;
        std::uint32_t next;
    };

    const std::size_t refs = ctx.prepared.totalReferences;
    const std::size_t capacity = hashCapacityFor(refs);
    const std::size_t mask = capacity - 1;
    std::vector<std::uint32_t> slots(capacity, kEmpty);
    std::vector<Entry> entries;
    entries.reserve(refs);
    std::vector<Link> links;
    links.reserve(refs);

    for (const auto &q : batch.queries) {
        for (IndexId index : q.indices) {
            // Fibonacci hashing spreads consecutive ids across the table.
            std::size_t slot =
                (static_cast<std::uint64_t>(index) *
                 UINT64_C(0x9E3779B97F4A7C15) >> 32) & mask;
            std::uint32_t entry_id;
            while (true) {
                const std::uint32_t occupant = slots[slot];
                if (occupant == kEmpty) {
                    entry_id = static_cast<std::uint32_t>(entries.size());
                    slots[slot] = entry_id;
                    entries.push_back({index, kEmpty, kEmpty, 0});
                    break;
                }
                if (entries[occupant].index == index) {
                    entry_id = occupant;
                    break;
                }
                slot = (slot + 1) & mask;
            }
            Entry &entry = entries[entry_id];
            const auto link_id = static_cast<std::uint32_t>(links.size());
            links.push_back({q.id, kEmpty});
            if (entry.tail == kEmpty)
                entry.head = link_id;
            else
                links[entry.tail].next = link_id;
            entry.tail = link_id;
            ++entry.count;
        }
    }

    ctx.prepared.uniqueCount = entries.size();
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.index < b.index; });

    std::vector<QueryId> users;
    for (const Entry &entry : entries) {
        users.clear();
        users.reserve(entry.count);
        for (std::uint32_t link = entry.head; link != kEmpty;
             link = links[link].next)
            users.push_back(links[link].query);
        ctx.emitDedupRead(entry.index, users.data(), users.size());
    }

    FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                   " queries: ", ctx.prepared.accessCount, " reads for ",
                   ctx.prepared.totalReferences,
                   " references (dedup=true, imbalance=",
                   ctx.prepared.loadImbalance(), ")");
    return std::move(ctx.prepared);
}

PreparedBatch
prepareBatchReference(const embedding::VectorLayout &layout,
                      const embedding::EmbeddingStore *store,
                      const embedding::Batch &batch, bool dedup,
                      VectorPool *pool)
{
    PrepareContext ctx(layout, store, batch, pool);
    if (!dedup) {
        ctx.emitNoDedup(batch);
        return std::move(ctx.prepared);
    }

    // Distinct indices, and which queries reference each (ordered map for
    // deterministic index-ascending read issue order).
    std::map<IndexId, std::vector<QueryId>> map_users;
    for (const auto &q : batch.queries)
        for (IndexId index : q.indices)
            map_users[index].push_back(q.id);
    ctx.prepared.uniqueCount = map_users.size();

    for (const auto &[index, queries] : map_users)
        ctx.emitDedupRead(index, queries.data(), queries.size());
    return std::move(ctx.prepared);
}

void
releasePrepared(PreparedBatch &prepared, VectorPool &pool)
{
    for (auto &reads : prepared.rankReads)
        for (auto &read : reads)
            pool.release(std::move(read.item.value));
    prepared.rankReads.clear();
}

PreparedBatch
Host::prepare(const embedding::Batch &batch, bool dedup) const
{
    return prepareBatch(layout_, store_, batch, dedup);
}

} // namespace fafnir::core
