/**
 * @file
 * Implementation of host-side batch compilation.
 */

#include "host.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>

#include "common/debug.hh"
#include "common/logging.hh"

namespace fafnir::core
{

std::size_t
PreparedBatch::maxReadsPerRank() const
{
    std::size_t max_reads = 0;
    for (const auto &reads : rankReads)
        max_reads = std::max(max_reads, reads.size());
    return max_reads;
}

double
PreparedBatch::loadImbalance() const
{
    if (rankReads.empty() || accessCount == 0)
        return 1.0;
    const double mean = static_cast<double>(accessCount) /
                        static_cast<double>(rankReads.size());
    return static_cast<double>(maxReadsPerRank()) / mean;
}

namespace
{

/** Build one scheduled read (rank assignment is the caller's job). */
RankRead
makeRankRead(const embedding::VectorLayout &layout,
             const embedding::EmbeddingStore *store, VectorPool *pool,
             IndexId index, SmallVec<QueryResidual, 2> queries,
             embedding::PayloadFormat payload)
{
    RankRead read;
    read.index = index;
    read.address = layout.addressOf(index);
    read.item.indices = IndexSet::single(index);
    read.item.queries = std::move(queries);
    if (store) {
        if (pool) {
            const unsigned dim = store->config().dim();
            read.item.value = pool->acquire(dim);
            for (unsigned e = 0; e < dim; ++e)
                read.item.value[e] = store->element(index, e);
        } else {
            read.item.value = store->vector(index);
        }
        // Quantize once at the leaf: the value entering the tree is the
        // dequantized payload, so partials upward stay exact fp32 over
        // the round-tripped leaves (a pure function of store + format).
        embedding::payloadRoundTrip(payload, read.item.value.data(),
                                    read.item.value.size());
    }
    return read;
}

/** Shared skeleton: everything but the dedup scan itself. */
struct PrepareContext
{
    const embedding::VectorLayout &layout;
    const embedding::EmbeddingStore *store;
    VectorPool *pool;
    /** Reference mode computes residuals via std::set_difference
     *  (IndexSet::minus) instead of the SIMD header-build kernel, so
     *  differential tests compare the two implementations. */
    bool reference;
    PreparedBatch prepared;

    PrepareContext(const embedding::VectorLayout &lay,
                   const embedding::EmbeddingStore *st,
                   const embedding::Batch &batch, VectorPool *pl,
                   bool ref = false,
                   embedding::PayloadFormat fmt =
                       embedding::PayloadFormat::Fp32)
        : layout(lay), store(st), pool(pl), reference(ref)
    {
        batch.check();
        prepared.payload = fmt;
        prepared.rankReads.resize(lay.mapper().geometry().totalRanks());
        prepared.totalReferences = batch.totalIndices();
        prepared.querySets.reserve(batch.size());
        for (const auto &q : batch.queries)
            prepared.querySets.emplace_back(q.indices);
    }

    IndexSet
    residualOf(QueryId q, IndexId index) const
    {
        if (reference)
            return prepared.querySets[q].minus(IndexSet::single(index));
        return prepared.querySets[q].minusOne(index);
    }

    void
    makeRead(IndexId index, SmallVec<QueryResidual, 2> queries)
    {
        RankRead read = makeRankRead(layout, store, pool, index,
                                     std::move(queries), prepared.payload);
        const unsigned rank = layout.rankOf(index);
        prepared.rankReads[rank].push_back(std::move(read));
        ++prepared.accessCount;
    }

    void
    emitDedupRead(IndexId index, const QueryId *users, std::size_t count)
    {
        SmallVec<QueryResidual, 2> residuals;
        residuals.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const QueryId q = users[i];
            residuals.push_back({q, residualOf(q, index)});
        }
        makeRead(index, std::move(residuals));
    }

    void
    emitNoDedup(const embedding::Batch &batch)
    {
        // uniqueCount is still reported in no-dedup mode (it is the
        // denominator of the Figure 13/15 comparisons).
        std::vector<IndexId> distinct;
        distinct.reserve(prepared.totalReferences);
        for (const auto &q : batch.queries)
            distinct.insert(distinct.end(), q.indices.begin(),
                            q.indices.end());
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        prepared.uniqueCount = distinct.size();

        for (const auto &q : batch.queries)
            for (IndexId index : q.indices)
                makeRead(index, {{q.id, residualOf(q.id, index)}});
    }
};

constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();

std::size_t
hashCapacityFor(std::size_t references)
{
    // Load factor <= 0.5: capacity = next pow2 >= 2 * references.
    std::size_t cap = 16;
    while (cap < references * 2)
        cap <<= 1;
    return cap;
}

/** Flat open-addressing dedup table pieces, shared by the serial scan
 *  and the sharded workers. Per-index query lists are chained through
 *  DedupLink so insertion never allocates. */
struct DedupEntry
{
    IndexId index;
    std::uint32_t head;
    std::uint32_t tail;
    std::uint32_t count;
};

struct DedupLink
{
    QueryId query;
    std::uint32_t next;
};

/** The 32-bit Fibonacci hash of an index: the table slot comes from the
 *  low bits (& mask) and the worker shard from the high bits
 *  (fastrange), so the two carve-ups are independent. */
inline std::uint32_t
indexHash32(IndexId index)
{
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(index) *
        UINT64_C(0x9E3779B97F4A7C15) >> 32);
}

inline std::uint32_t
shardOf(std::uint32_t h32, unsigned workers)
{
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(h32) * workers) >> 32);
}

} // namespace

PreparedBatch
prepareBatch(const embedding::VectorLayout &layout,
             const embedding::EmbeddingStore *store,
             const embedding::Batch &batch, bool dedup, VectorPool *pool,
             embedding::PayloadFormat payload)
{
    PrepareContext ctx(layout, store, batch, pool, /*ref=*/false, payload);
    if (!dedup) {
        ctx.emitNoDedup(batch);
        FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                       " queries: ", ctx.prepared.accessCount, " reads for ",
                       ctx.prepared.totalReferences,
                       " references (dedup=false, imbalance=",
                       ctx.prepared.loadImbalance(), ")");
        return std::move(ctx.prepared);
    }

    // Flat open-addressing dedup, sized from the batch's reference count
    // (Batch::totalIndices upper-bounds the unique count). Per-index
    // query lists are kept as a chain through `links` so insertion never
    // allocates; a final sort of the entry table restores the
    // index-ascending issue order of the ordered-map reference.
    const std::size_t refs = ctx.prepared.totalReferences;
    const std::size_t capacity = hashCapacityFor(refs);
    const std::size_t mask = capacity - 1;
    std::vector<std::uint32_t> slots(capacity, kEmpty);
    std::vector<DedupEntry> entries;
    entries.reserve(refs);
    std::vector<DedupLink> links;
    links.reserve(refs);

    for (const auto &q : batch.queries) {
        for (IndexId index : q.indices) {
            // Fibonacci hashing spreads consecutive ids across the table.
            std::size_t slot = indexHash32(index) & mask;
            std::uint32_t entry_id;
            while (true) {
                const std::uint32_t occupant = slots[slot];
                if (occupant == kEmpty) {
                    entry_id = static_cast<std::uint32_t>(entries.size());
                    slots[slot] = entry_id;
                    entries.push_back({index, kEmpty, kEmpty, 0});
                    break;
                }
                if (entries[occupant].index == index) {
                    entry_id = occupant;
                    break;
                }
                slot = (slot + 1) & mask;
            }
            DedupEntry &entry = entries[entry_id];
            const auto link_id = static_cast<std::uint32_t>(links.size());
            links.push_back({q.id, kEmpty});
            if (entry.tail == kEmpty)
                entry.head = link_id;
            else
                links[entry.tail].next = link_id;
            entry.tail = link_id;
            ++entry.count;
        }
    }

    ctx.prepared.uniqueCount = entries.size();
    std::sort(entries.begin(), entries.end(),
              [](const DedupEntry &a, const DedupEntry &b) {
                  return a.index < b.index;
              });

    std::vector<QueryId> users;
    for (const DedupEntry &entry : entries) {
        users.clear();
        users.reserve(entry.count);
        for (std::uint32_t link = entry.head; link != kEmpty;
             link = links[link].next)
            users.push_back(links[link].query);
        ctx.emitDedupRead(entry.index, users.data(), users.size());
    }

    FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                   " queries: ", ctx.prepared.accessCount, " reads for ",
                   ctx.prepared.totalReferences,
                   " references (dedup=true, imbalance=",
                   ctx.prepared.loadImbalance(), ")");
    return std::move(ctx.prepared);
}

PreparedBatch
prepareBatchReference(const embedding::VectorLayout &layout,
                      const embedding::EmbeddingStore *store,
                      const embedding::Batch &batch, bool dedup,
                      VectorPool *pool, embedding::PayloadFormat payload)
{
    PrepareContext ctx(layout, store, batch, pool, /*ref=*/true, payload);
    if (!dedup) {
        ctx.emitNoDedup(batch);
        return std::move(ctx.prepared);
    }

    // Distinct indices, and which queries reference each (ordered map for
    // deterministic index-ascending read issue order).
    std::map<IndexId, std::vector<QueryId>> map_users;
    for (const auto &q : batch.queries)
        for (IndexId index : q.indices)
            map_users[index].push_back(q.id);
    ctx.prepared.uniqueCount = map_users.size();

    for (const auto &[index, queries] : map_users)
        ctx.emitDedupRead(index, queries.data(), queries.size());
    return std::move(ctx.prepared);
}

void
releasePrepared(PreparedBatch &prepared, VectorPool &pool)
{
    for (auto &reads : prepared.rankReads)
        for (auto &read : reads)
            pool.release(std::move(read.item.value));
    prepared.rankReads.clear();
}

// ---- PreparePool ------------------------------------------------------

PreparePool::PreparePool(unsigned workers)
    : workers_(std::max(1u, workers)), workerStats_(workers_)
{
    if (workers_ > 1)
        pool_ = std::make_unique<WorkerPool>(workers_ - 1);
}

PreparePool::~PreparePool() = default;

PreparePool::SlotArenas
PreparePool::makeSlotArenas() const
{
    SlotArenas arenas;
    arenas.pools.resize(workers_);
    return arenas;
}

PreparedBatch
PreparePool::prepare(const embedding::VectorLayout &layout,
                     const embedding::EmbeddingStore *store,
                     const embedding::Batch &batch, bool dedup,
                     SlotArenas *arenas, embedding::PayloadFormat payload)
{
    ++batches_;
    if (arenas)
        waitRecycle(*arenas);
    // Serial clamp: no pool at 1 worker, and an installed fault plan
    // forces the single-threaded path (the plan's RNG streams and the
    // pool_exhaust hook are not thread-safe). Output is bit-identical
    // either way.
    if (!pool_ || fault::plan() != nullptr) {
        if (pool_)
            ++serialFallbacks_;
        PreparedBatch prepared = prepareBatch(
            layout, store, batch, dedup,
            arenas ? &arenas->pools[0] : nullptr, payload);
        workerStats_[0].claimed += prepared.uniqueCount;
        workerStats_[0].reads += prepared.accessCount;
        return prepared;
    }
    return prepareSharded(layout, store, batch, dedup, arenas, payload);
}

PreparedBatch
PreparePool::prepareSharded(const embedding::VectorLayout &layout,
                            const embedding::EmbeddingStore *store,
                            const embedding::Batch &batch, bool dedup,
                            SlotArenas *arenas,
                            embedding::PayloadFormat payload)
{
    const unsigned W = workers_;
    for (unsigned w = 0; w < pool_->slots(); ++w)
        pool_->scratch(w).reset();

    PrepareContext ctx(layout, store, batch, nullptr, /*ref=*/false,
                       payload);
    const std::size_t refs = ctx.prepared.totalReferences;
    const std::size_t ranks = ctx.prepared.rankReads.size();

    // Chunk-local read lists, concatenated per rank in chunk order at
    // the end. Chunks are contiguous ranges of the deterministic emit
    // order, so the concatenation reproduces the serial order exactly.
    std::vector<std::vector<std::vector<RankRead>>> chunkReads(W);

    const auto emitChunk = [&](std::size_t c, std::size_t lo,
                               std::size_t hi,
                               const auto &emitOne) {
        auto &local = chunkReads[c];
        local.assign(ranks, {});
        VectorPool *pool = arenas ? &arenas->pools[c] : nullptr;
        std::uint64_t emitted = 0;
        for (std::size_t i = lo; i < hi; ++i)
            emitted += emitOne(i, local, pool);
        workerStats_[c].reads += emitted;
    };

    if (dedup) {
        // Phase 1: every shard scans the whole batch, claiming only the
        // references whose index hashes into it. Shard-local tables and
        // chains live in the worker slot's scratch arena.
        struct ShardScan
        {
            DedupEntry *entries = nullptr;
            DedupLink *links = nullptr;
            std::uint32_t entryCount = 0;
            std::uint32_t linkCount = 0;
        };
        std::vector<ShardScan> scans(W);
        const std::size_t capacity = hashCapacityFor(refs);
        const std::size_t mask = capacity - 1;

        pool_->runIndexed(W, [&](std::size_t s, unsigned slot) {
            ScratchArena &arena = pool_->scratch(slot);
            auto *table = arena.alloc<std::uint32_t>(capacity);
            std::fill_n(table, capacity, kEmpty);
            auto *entries = arena.alloc<DedupEntry>(refs);
            auto *links = arena.alloc<DedupLink>(refs);
            ShardScan scan{entries, links, 0, 0};
            for (const auto &q : batch.queries) {
                for (IndexId index : q.indices) {
                    const std::uint32_t h32 = indexHash32(index);
                    if (shardOf(h32, W) != s)
                        continue;
                    std::size_t slot_i = h32 & mask;
                    std::uint32_t entry_id;
                    while (true) {
                        const std::uint32_t occupant = table[slot_i];
                        if (occupant == kEmpty) {
                            entry_id = scan.entryCount;
                            table[slot_i] = entry_id;
                            entries[scan.entryCount++] =
                                {index, kEmpty, kEmpty, 0};
                            break;
                        }
                        if (entries[occupant].index == index) {
                            entry_id = occupant;
                            break;
                        }
                        slot_i = (slot_i + 1) & mask;
                    }
                    DedupEntry &entry = entries[entry_id];
                    const std::uint32_t link_id = scan.linkCount;
                    links[scan.linkCount++] = {q.id, kEmpty};
                    if (entry.tail == kEmpty)
                        entry.head = link_id;
                    else
                        links[entry.tail].next = link_id;
                    entry.tail = link_id;
                    ++entry.count;
                }
            }
            scans[s] = scan;
            workerStats_[s].claimed += scan.entryCount;
        });

        // Phase 2 (serial): merge the shards' disjoint entries and sort
        // by index — every index lives in exactly one shard, so the
        // order is strict and matches the serial scan's sorted table.
        struct MergedEntry
        {
            IndexId index;
            std::uint32_t shard;
            std::uint32_t head;
            std::uint32_t count;
        };
        std::vector<MergedEntry> merged;
        std::size_t unique = 0;
        for (const ShardScan &scan : scans)
            unique += scan.entryCount;
        merged.reserve(unique);
        for (std::uint32_t s = 0; s < W; ++s)
            for (std::uint32_t e = 0; e < scans[s].entryCount; ++e) {
                const DedupEntry &entry = scans[s].entries[e];
                merged.push_back(
                    {entry.index, s, entry.head, entry.count});
            }
        std::sort(merged.begin(), merged.end(),
                  [](const MergedEntry &a, const MergedEntry &b) {
                      return a.index < b.index;
                  });
        ctx.prepared.uniqueCount = merged.size();

        // Phase 3: emit contiguous chunks of the sorted entries.
        const std::size_t n = merged.size();
        pool_->runIndexed(W, [&](std::size_t c, unsigned) {
            emitChunk(c, c * n / W, (c + 1) * n / W,
                      [&](std::size_t i, auto &local, VectorPool *pool) {
                          const MergedEntry &m = merged[i];
                          const ShardScan &scan = scans[m.shard];
                          SmallVec<QueryResidual, 2> residuals;
                          residuals.reserve(m.count);
                          for (std::uint32_t link = m.head;
                               link != kEmpty;
                               link = scan.links[link].next) {
                              const QueryId q = scan.links[link].query;
                              residuals.push_back(
                                  {q, ctx.residualOf(q, m.index)});
                          }
                          RankRead read = makeRankRead(
                              layout, store, pool, m.index,
                              std::move(residuals), payload);
                          local[layout.rankOf(m.index)].push_back(
                              std::move(read));
                          return 1;
                      });
        });
    } else {
        // No-dedup: uniqueCount is still the Figure 13/15 denominator.
        std::vector<IndexId> distinct;
        distinct.reserve(refs);
        for (const auto &q : batch.queries)
            distinct.insert(distinct.end(), q.indices.begin(),
                            q.indices.end());
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        ctx.prepared.uniqueCount = distinct.size();

        // Emit contiguous query ranges; concatenation in chunk order
        // reproduces the serial query-scan read order.
        const std::size_t nq = batch.queries.size();
        pool_->runIndexed(W, [&](std::size_t c, unsigned) {
            emitChunk(c, c * nq / W, (c + 1) * nq / W,
                      [&](std::size_t qi, auto &local, VectorPool *pool) {
                          const auto &q = batch.queries[qi];
                          for (IndexId index : q.indices) {
                              RankRead read = makeRankRead(
                                  layout, store, pool, index,
                                  {{q.id, ctx.residualOf(q.id, index)}},
                                  payload);
                              local[layout.rankOf(index)].push_back(
                                  std::move(read));
                          }
                          return q.indices.size();
                      });
        });
    }

    // Phase 4 (serial): per-rank concatenation in chunk order.
    std::size_t total = 0;
    for (std::size_t r = 0; r < ranks; ++r) {
        std::size_t size = 0;
        for (unsigned c = 0; c < W; ++c)
            size += chunkReads[c][r].size();
        auto &out = ctx.prepared.rankReads[r];
        out.reserve(size);
        for (unsigned c = 0; c < W; ++c) {
            auto &part = chunkReads[c][r];
            out.insert(out.end(),
                       std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
        }
        total += size;
    }
    ctx.prepared.accessCount = total;

    FAFNIR_DPRINTF(Host, "compiled batch of ", batch.size(),
                   " queries: ", ctx.prepared.accessCount, " reads for ",
                   ctx.prepared.totalReferences, " references (dedup=",
                   dedup ? "true" : "false", ", workers=", W,
                   ", imbalance=", ctx.prepared.loadImbalance(), ")");
    return std::move(ctx.prepared);
}

void
PreparePool::recycleInto(PreparedBatch &prepared,
                         std::vector<VectorPool> &pools)
{
    // Round-robin over the chunk pools so supply roughly matches the
    // per-chunk demand of the next prepare; deterministic because the
    // walk order is the prepared batch's rank/read order.
    std::size_t r = 0;
    for (auto &reads : prepared.rankReads)
        for (auto &read : reads)
            pools[r++ % pools.size()].release(std::move(read.item.value));
    prepared.rankReads.clear();
}

void
PreparePool::recycleAsync(PreparedBatch &&prepared, SlotArenas &arenas)
{
    if (!pool_ || fault::plan() != nullptr) {
        PreparedBatch dead = std::move(prepared);
        recycleInto(dead, arenas.pools);
        return;
    }
    waitRecycle(arenas);
    ++asyncRecycles_;
    auto dead = std::make_shared<PreparedBatch>(std::move(prepared));
    SlotArenas *slot = &arenas;
    arenas.pendingRecycle = pool_->submit(
        [dead, slot] { recycleInto(*dead, slot->pools); });
}

void
PreparePool::waitRecycle(SlotArenas &arenas)
{
    if (pool_)
        pool_->wait(arenas.pendingRecycle);
}

void
PreparePool::registerStats(StatGroup &group)
{
    group.addCounter("prepare.batches", batches_,
                     "batches through the prepare pool");
    group.addCounter("prepare.serialFallbacks", serialFallbacks_,
                     "multi-worker prepares forced serial by a fault plan");
    group.addCounter("prepare.asyncRecycles", asyncRecycles_,
                     "slot recycles overlapped with later work");
    for (unsigned w = 0; w < workers_; ++w) {
        const std::string prefix =
            "prepare.worker" + std::to_string(w);
        group.addCounter(prefix + ".claimed", workerStats_[w].claimed,
                         "unique indices claimed by shard " +
                             std::to_string(w));
        group.addCounter(prefix + ".reads", workerStats_[w].reads,
                         "reads emitted by chunk " + std::to_string(w));
    }
}

PreparedBatch
Host::prepare(const embedding::Batch &batch, bool dedup,
              embedding::PayloadFormat payload) const
{
    return prepareBatch(layout_, store_, batch, dedup, nullptr, payload);
}

} // namespace fafnir::core
