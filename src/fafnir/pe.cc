/**
 * @file
 * Functional PE implementation: compare, reduce/forward, merge.
 */

#include "pe.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "embedding/reduce_kernels.hh"
#include "fafnir/pool.hh"

namespace fafnir::core
{

namespace
{

/** A copy of @p v, into recycled capacity when a pool is supplied. */
embedding::Vector
copyValue(const embedding::Vector &v, VectorPool *pool)
{
    if (pool == nullptr || v.empty())
        return v;
    embedding::Vector out = pool->acquire(v.size());
    std::copy(v.begin(), v.end(), out.begin());
    return out;
}

/** Element-wise combine used by the reduce path. */
embedding::Vector
addValues(const embedding::Vector &a, const embedding::Vector &b,
          embedding::ReduceOp op, VectorPool *pool)
{
    FAFNIR_ASSERT(a.size() == b.size(), "value dimension mismatch");
    embedding::Vector out = pool != nullptr ? pool->acquire(a.size())
                                            : embedding::Vector(a.size());
    embedding::combineSpan(op, out.data(), a.data(), b.data(), a.size());
    return out;
}

/** A forward of @p source carrying only the residual of @p query. */
PeOutput
makeForward(const Item &source, const QueryResidual &residual,
            std::uint8_t side, std::uint16_t index, VectorPool *pool)
{
    Item item;
    item.indices = source.indices;
    item.queries = {residual};
    item.value = copyValue(source.value, pool);
    return {std::move(item), PeAction::Forward, {{side, index}}};
}

} // namespace

std::vector<PeOutput>
ProcessingElement::process(const std::vector<Item> &a,
                           const std::vector<Item> &b, PeActivity &activity,
                           bool values, embedding::ReduceOp op,
                           VectorPool *pool,
                           embedding::PayloadFormat payload)
{
    const bool quantized = payload != embedding::PayloadFormat::Fp32;
    // The compute-unit fabric compares every entry of one buffer with every
    // entry of the other (Section IV-B).
    activity.compares += static_cast<std::uint64_t>(a.size()) * b.size();

    // Gather, per query, the buffer positions that carry its residuals, in
    // buffer order. std::map keeps query iteration deterministic.
    std::map<QueryId, std::pair<std::vector<std::size_t>,
                                std::vector<std::size_t>>>
        by_query;
    for (std::size_t i = 0; i < a.size(); ++i)
        for (const auto &r : a[i].queries)
            by_query[r.query].first.push_back(i);
    for (std::size_t i = 0; i < b.size(); ++i)
        for (const auto &r : b[i].queries)
            by_query[r.query].second.push_back(i);

    std::vector<PeOutput> raw;
    for (const auto &[query, sides] : by_query) {
        const auto &[in_a, in_b] = sides;
        const std::size_t paired = std::min(in_a.size(), in_b.size());

        for (std::size_t i = 0; i < paired; ++i) {
            const Item &left = a[in_a[i]];
            const Item &right = b[in_b[i]];
            const QueryResidual *ra = left.findQuery(query);
            const QueryResidual *rb = right.findQuery(query);
            FAFNIR_ASSERT(ra && rb, "residual lookup failed");
            FAFNIR_ASSERT(ra->remaining.containsAll(right.indices),
                          "query ", query, ": right operand ",
                          right.indices.toString(),
                          " not wanted by residual ",
                          ra->remaining.toString());
            FAFNIR_ASSERT(rb->remaining.containsAll(left.indices),
                          "query ", query, ": left operand not wanted");

            Item item;
            item.indices = left.indices.disjointUnion(right.indices);
            item.queries = {{query, ra->remaining.minus(right.indices)}};
            if (values && !left.value.empty())
                item.value = addValues(left.value, right.value, op, pool);
            // Meeting-logic codec work under a compressed payload:
            // dequantize both operands, accumulate in fp32, and
            // requantize the partial for the uplink. Counted per
            // meeting whether or not this run materializes values —
            // the values themselves stay the exact fp32 combines; the
            // leaf round-trip already fixed every operand
            // (quantize.hh), so these counters drive only the
            // byte/energy model.
            if (quantized) {
                activity.dequants += 2;
                activity.requants += 1;
            }
            raw.push_back(
                {std::move(item),
                 PeAction::Reduce,
                 {{0, static_cast<std::uint16_t>(in_a[i])},
                  {1, static_cast<std::uint16_t>(in_b[i])}}});
            ++activity.reduces;
        }
        for (std::size_t i = paired; i < in_a.size(); ++i) {
            raw.push_back(
                makeForward(a[in_a[i]], *a[in_a[i]].findQuery(query), 0,
                            static_cast<std::uint16_t>(in_a[i]), pool));
            ++activity.forwards;
        }
        for (std::size_t i = paired; i < in_b.size(); ++i) {
            raw.push_back(
                makeForward(b[in_b[i]], *b[in_b[i]].findQuery(query), 1,
                            static_cast<std::uint16_t>(in_b[i]), pool));
            ++activity.forwards;
        }
    }

    // Merge unit: group by indices set. Equal indices imply the same value
    // (a value is a pure function of the vectors it sums), so duplicates
    // are dropped and distinct residual lists are concatenated.
    std::map<IndexSet, PeOutput> merged;
    for (auto &out : raw) {
        auto [it, inserted] = merged.try_emplace(out.item.indices,
                                                 std::move(out));
        if (inserted)
            continue;
        PeOutput &existing = it->second;
        // The losing duplicate's value buffer dies here; recycle it.
        if (pool != nullptr)
            pool->release(std::move(out.item.value));
        for (auto &residual : out.item.queries) {
            bool duplicate = false;
            for (const auto &have : existing.item.queries) {
                if (have == residual) {
                    duplicate = true;
                    break;
                }
            }
            if (duplicate) {
                ++activity.duplicatesDropped;
            } else {
                existing.item.queries.push_back(std::move(residual));
                ++activity.headersMerged;
            }
        }
        for (const Provenance &src : out.sources) {
            bool known = false;
            for (const Provenance &have : existing.sources)
                known |= have == src;
            if (!known)
                existing.sources.push_back(src);
        }
        if (out.action == PeAction::Reduce)
            existing.action = PeAction::Reduce;
    }

    std::vector<PeOutput> outputs;
    outputs.reserve(merged.size());
    for (auto &[key, out] : merged)
        outputs.push_back(std::move(out));
    return outputs;
}

} // namespace fafnir::core
