/**
 * @file
 * Implementation of the sharded serving tier.
 */

#include "sharding.hh"

#include <algorithm>
#include <ostream>

#include "common/debug.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "embedding/reduce_kernels.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/attribution.hh"
#include "telemetry/timeseries.hh"

namespace fafnir::core
{

namespace
{

/** splitmix64 — the placement hash. Table ids are tiny and sequential;
 *  a strong mix keeps adjacent (often co-hot) tables apart. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

PlacementPolicy
parsePlacement(const std::string &name)
{
    if (name == "hash")
        return PlacementPolicy::Hash;
    if (name == "range")
        return PlacementPolicy::Range;
    FAFNIR_FATAL("unknown placement '", name,
                 "' (expected hash or range)");
}

const char *
toString(PlacementPolicy policy)
{
    return policy == PlacementPolicy::Hash ? "hash" : "range";
}

ShardRouter::ShardRouter(unsigned shards, PlacementPolicy policy,
                         const embedding::TableConfig &tables)
    : shards_(shards), policy_(policy), tables_(tables)
{
    FAFNIR_ASSERT(shards_ >= 1, "router needs >= 1 shard");
    placement_.resize(tables_.numTables);
    for (unsigned t = 0; t < tables_.numTables; ++t) {
        placement_[t] = policy_ == PlacementPolicy::Hash
            ? static_cast<unsigned>(mix64(t) % shards_)
            : static_cast<unsigned>(
                  static_cast<std::uint64_t>(t) * shards_ /
                  tables_.numTables);
    }
}

ShardRouter::SplitBatch
ShardRouter::split(const embedding::Batch &batch) const
{
    SplitBatch out;
    out.perShard.resize(shards_);
    out.totalIndices.reserve(batch.size());
    for (std::size_t g = 0; g < batch.queries.size(); ++g) {
        const embedding::Query &q = batch.queries[g];
        out.totalIndices.push_back(q.indices.size());
        unsigned touched = 0;
        for (IndexId index : q.indices) {
            SubBatch &sub = out.perShard[shardOfIndex(index)];
            if (sub.globalQuery.empty() ||
                sub.globalQuery.back() != static_cast<std::uint32_t>(g)) {
                embedding::Query local;
                local.id =
                    static_cast<QueryId>(sub.batch.queries.size());
                sub.batch.queries.push_back(std::move(local));
                sub.globalQuery.push_back(
                    static_cast<std::uint32_t>(g));
                ++touched;
            }
            sub.batch.queries.back().indices.push_back(index);
        }
        if (touched > 1)
            ++out.crossShardQueries;
    }
    return out;
}

double
ShardRouter::imbalance(const std::vector<std::uint64_t> &refsPerTable) const
{
    std::vector<std::uint64_t> load(shards_, 0);
    for (std::size_t t = 0;
         t < refsPerTable.size() && t < placement_.size(); ++t)
        load[placement_[t]] += refsPerTable[t];
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t l : load) {
        total += l;
        peak = std::max(peak, l);
    }
    if (total == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(shards_);
    return static_cast<double>(peak) / mean;
}

std::vector<ShardMove>
ShardRouter::rebalance(const std::vector<std::uint64_t> &refsPerTable,
                       double threshold, unsigned maxMoves) const
{
    std::vector<ShardMove> moves;
    if (shards_ < 2)
        return moves;
    if (maxMoves == 0)
        maxMoves = shards_;

    std::vector<unsigned> placement = placement_;
    std::vector<std::uint64_t> load(shards_, 0);
    std::uint64_t total = 0;
    for (std::size_t t = 0;
         t < refsPerTable.size() && t < placement.size(); ++t) {
        load[placement[t]] += refsPerTable[t];
        total += refsPerTable[t];
    }
    if (total == 0)
        return moves;
    const double mean =
        static_cast<double>(total) / static_cast<double>(shards_);

    while (moves.size() < maxMoves) {
        unsigned hot = 0, cold = 0;
        for (unsigned s = 1; s < shards_; ++s) {
            if (load[s] > load[hot])
                hot = s;
            if (load[s] < load[cold])
                cold = s;
        }
        if (static_cast<double>(load[hot]) / mean < threshold)
            break;
        // Hottest table on the hot shard; ties by lowest table id.
        unsigned table = tables_.numTables;
        std::uint64_t tableRefs = 0;
        for (unsigned t = 0;
             t < placement.size() && t < refsPerTable.size(); ++t) {
            if (placement[t] == hot && refsPerTable[t] > tableRefs) {
                table = t;
                tableRefs = refsPerTable[t];
            }
        }
        if (table == tables_.numTables)
            break; // the hot shard's load is not attributable to a table
        // Only take strictly improving moves: the max load must drop,
        // or a skewed table just ping-pongs between shards.
        const std::uint64_t newHot = load[hot] - tableRefs;
        const std::uint64_t newCold = load[cold] + tableRefs;
        if (std::max(newHot, newCold) >= load[hot])
            break;
        moves.push_back({table, hot, cold});
        placement[table] = cold;
        load[hot] = newHot;
        load[cold] = newCold;
    }
    return moves;
}

void
ShardRouter::apply(const std::vector<ShardMove> &moves)
{
    for (const ShardMove &m : moves) {
        FAFNIR_ASSERT(m.table < placement_.size() && m.to < shards_,
                      "bad shard move: table ", m.table, " -> shard ",
                      m.to);
        FAFNIR_ASSERT(placement_[m.table] == m.from,
                      "stale shard move: table ", m.table,
                      " lives on shard ", placement_[m.table], ", not ",
                      m.from);
        placement_[m.table] = m.to;
    }
}

std::vector<std::vector<EngineReplica>>
makeShardReplicas(unsigned shards, unsigned replicasPerShard,
                  const ReplicaMemoryConfig &mem,
                  const embedding::TableConfig &tables,
                  EventEngineConfig config,
                  const embedding::EmbeddingStore *store)
{
    // The tier owns Mean's root divide (it needs the *global* gathered
    // count); shard engines reduce their slice as a plain sum.
    if (config.reduceOp == embedding::ReduceOp::Mean)
        config.reduceOp = embedding::ReduceOp::Sum;
    std::vector<std::vector<EngineReplica>> groups;
    groups.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        groups.push_back(makeEventReplicas(replicasPerShard, mem, tables,
                                           config, store));
    return groups;
}

double
ShardedReport::loadImbalance() const
{
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t r : refsPerShard) {
        total += r;
        peak = std::max(peak, r);
    }
    if (total == 0 || refsPerShard.empty())
        return 1.0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(refsPerShard.size());
    return static_cast<double>(peak) / mean;
}

ShardedServingTier::ShardedServingTier(
    const ShardTierConfig &config,
    std::vector<std::vector<EngineReplica>> &shardReplicas,
    const embedding::EmbeddingStore *store)
    : config_(config),
      router_(config.shards, config.placement,
              shardReplicas.empty() || shardReplicas[0].empty()
                  ? embedding::TableConfig{}
                  : shardReplicas[0][0].layout->tables()),
      shardReplicas_(shardReplicas), store_(store)
{
    FAFNIR_ASSERT(config_.shards >= 1, "tier needs >= 1 shard");
    FAFNIR_ASSERT(shardReplicas_.size() >= config_.shards,
                  "tier configured for ", config_.shards,
                  " shards but only ", shardReplicas_.size(),
                  " replica groups were built");
    refsPerTable_.assign(router_.tables().numTables, 0);
    pipelines_.reserve(config_.shards);
    perShardSubBatches_.reserve(config_.shards);
    perShardRefs_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
        pipelines_.push_back(std::make_unique<ServingPipeline>(
            config_.serving, shardReplicas_[s], store_));
        perShardSubBatches_.push_back(std::make_unique<Counter>());
        perShardRefs_.push_back(std::make_unique<Counter>());
    }
}

ShardedReport
ShardedServingTier::serve(const std::vector<embedding::Batch> &batches,
                          Tick arrivalGap, Tick start)
{
    std::vector<Tick> arrivals;
    arrivals.reserve(batches.size());
    for (std::size_t k = 0; k < batches.size(); ++k)
        arrivals.push_back(start + arrivalGap * k);
    return serve(batches, arrivals);
}

ShardedReport
ShardedServingTier::serve(const std::vector<embedding::Batch> &batches,
                          const std::vector<Tick> &arrivals)
{
    FAFNIR_ASSERT(arrivals.size() == batches.size(),
                  "serve() wants one arrival tick per batch (",
                  arrivals.size(), " arrivals for ", batches.size(),
                  " batches)");
    const unsigned shards = config_.shards;
    const Tick start = arrivals.empty() ? 0 : arrivals.front();

    // --- Scatter: split every batch by the current placement. --------
    std::vector<ShardRouter::SplitBatch> splits;
    splits.reserve(batches.size());
    for (const embedding::Batch &batch : batches) {
        splits.push_back(router_.split(batch));
        for (const embedding::Query &q : batch.queries)
            for (IndexId index : q.indices)
                ++refsPerTable_[router_.tables().tableOf(index) %
                                router_.tables().numTables];
    }

    // Per-shard sub-batch streams; a shard only sees the batches that
    // touch it, at the global arrival tick.
    struct ShardStream
    {
        std::vector<embedding::Batch> batches;
        std::vector<Tick> arrivals;
        std::vector<std::size_t> global;
        std::vector<std::uint64_t> refs;
    };
    std::vector<ShardStream> streams(shards);
    for (std::size_t k = 0; k < splits.size(); ++k) {
        for (unsigned s = 0; s < shards; ++s) {
            ShardRouter::SubBatch &sub = splits[k].perShard[s];
            if (sub.batch.queries.empty())
                continue;
            streams[s].refs.push_back(sub.batch.totalIndices());
            streams[s].batches.push_back(std::move(sub.batch));
            streams[s].arrivals.push_back(arrivals[k]);
            streams[s].global.push_back(k);
        }
    }

    ShardedReport report;
    report.batches.reserve(batches.size());
    report.subBatchesPerShard.assign(shards, 0);
    report.refsPerShard.assign(shards, 0);
    report.perShard.reserve(shards);

    // --- Per-shard pipelined serving (independent simulated tracks). -
    for (unsigned s = 0; s < shards; ++s) {
        report.perShard.push_back(
            pipelines_[s]->serve(streams[s].batches,
                                 streams[s].arrivals));
        report.subBatchesPerShard[s] = streams[s].batches.size();
        for (std::uint64_t r : streams[s].refs)
            report.refsPerShard[s] += r;
        *perShardSubBatches_[s] += streams[s].batches.size();
        *perShardRefs_[s] += report.refsPerShard[s];
    }

    telemetry::TimeSeries *series = telemetry::timeseries();
    telemetry::Attribution *attr = telemetry::attribution();
    std::vector<telemetry::WindowedCounter *> winShardBatches;
    std::vector<telemetry::WindowedCounter *> winShardRefs;
    telemetry::WindowedHistogram *winCombine = nullptr;
    if (series) {
        for (unsigned s = 0; s < shards; ++s) {
            const std::string prefix =
                "serving.shard" + std::to_string(s);
            winShardBatches.push_back(
                &series->counter(prefix + ".batches"));
            winShardRefs.push_back(&series->counter(prefix + ".refs"));
        }
        winCombine = &series->histogram(
            "serving.shard.combine_us",
            "cross-shard combine time per multi-shard batch");
    }

    // --- Gather: fixed-order cross-shard combine per global batch. ---
    const embedding::ReduceOp engineOp =
        config_.reduceOp == embedding::ReduceOp::Mean
            ? embedding::ReduceOp::Sum
            : config_.reduceOp;
    std::vector<std::size_t> next(shards, 0);
    std::vector<const ServedBatchTrace *> part(shards, nullptr);
    Tick combineFree = start;
    Tick last = start;
    for (std::size_t k = 0; k < batches.size(); ++k) {
        ShardedBatchTrace trace;
        trace.batch = k;
        trace.arrival = arrivals[k];

        Tick shardsDone = arrivals[k];
        unsigned participants = 0;
        std::size_t localQueries = 0;
        std::size_t activeQueries = 0;
        for (unsigned s = 0; s < shards; ++s) {
            part[s] = nullptr;
            if (next[s] < streams[s].global.size() &&
                streams[s].global[next[s]] == k) {
                part[s] = &report.perShard[s].batches[next[s]];
                shardsDone = std::max(shardsDone, part[s]->done);
                if (series) {
                    winShardBatches[s]->record(part[s]->done);
                    winShardRefs[s]->record(part[s]->done,
                                            streams[s].refs[next[s]]);
                }
                localQueries +=
                    splits[k].perShard[s].globalQuery.size();
                ++participants;
                ++next[s];
            }
        }
        for (std::size_t count : splits[k].totalIndices)
            activeQueries += count > 0;
        trace.shardsTouched = participants;

        // The serial combine port merges one multi-shard batch at a
        // time: a fixed setup charge plus one vector combine per extra
        // partial. Single-shard batches bypass the port entirely.
        const std::size_t extraPartials =
            localQueries > activeQueries ? localQueries - activeQueries
                                         : 0;
        const Tick cost = participants > 1
            ? config_.combineFixed +
                  config_.combinePerVector *
                      static_cast<Tick>(extraPartials)
            : 0;
        Tick combineDone = shardsDone;
        if (cost > 0) {
            const Tick combineStart = std::max(combineFree, shardsDone);
            combineDone = combineStart + cost;
            combineFree = combineDone;
            combineTicks_ += cost;
            report.combineBusy += cost;
            if (winCombine)
                winCombine->record(
                    combineDone,
                    static_cast<double>(cost) /
                        static_cast<double>(kTicksPerUs));
            // code = shards combined; a = batch, b = combine ticks.
            if (auto *rec = telemetry::flightRecorder())
                rec->record(telemetry::Stage::ShardCombine, combineDone,
                            participants, k, cost);
        }
        trace.shardsDone = shardsDone;
        trace.combineDone = combineDone;
        last = std::max(last, combineDone);

        // Fixed-order value combine: shard 0's partial seeds each
        // query, higher shards fold in ascending order, and Mean takes
        // its single root divide with the global gathered count.
        if (store_ != nullptr) {
            trace.results.assign(batches[k].size(),
                                 embedding::Vector{});
            for (unsigned s = 0; s < shards; ++s) {
                if (part[s] == nullptr)
                    continue;
                const auto &partials = part[s]->timing.results;
                const auto &global = splits[k].perShard[s].globalQuery;
                if (partials.size() != global.size())
                    continue; // engines ran without computeValues
                for (std::size_t l = 0; l < global.size(); ++l) {
                    embedding::Vector &acc = trace.results[global[l]];
                    if (acc.empty())
                        acc = partials[l];
                    else
                        embedding::combineSpan(engineOp, acc.data(),
                                               partials[l].data(),
                                               acc.size());
                }
            }
            if (config_.reduceOp == embedding::ReduceOp::Mean) {
                for (std::size_t g = 0; g < trace.results.size(); ++g)
                    if (!trace.results[g].empty())
                        embedding::finalizeSpan(
                            embedding::ReduceOp::Mean,
                            trace.results[g].data(),
                            trace.results[g].size(),
                            splits[k].totalIndices[g]);
            }
        }

        // Extend each participating sub-batch's attribution forward to
        // the tier's combine point: complete += delta, shardCombine +=
        // delta keeps the telescoping component sum exact.
        if (attr) {
            for (unsigned s = 0; s < shards; ++s)
                if (part[s] != nullptr)
                    attr->annotateShardCombine(
                        part[s]->attribBatch,
                        combineDone - part[s]->complete);
        }

        ++servedBatches_;
        servedQueries_ += batches[k].size();
        report.batches.push_back(std::move(trace));
    }
    crossShardQueries_ += [&] {
        std::uint64_t cross = 0;
        for (const auto &split : splits)
            cross += split.crossShardQueries;
        return cross;
    }();
    for (const auto &split : splits)
        report.crossShardQueries += split.crossShardQueries;

    report.makespan = last > start ? last - start : 0;
    if (series)
        series->flush(last);
    FAFNIR_DPRINTF(Serving, "sharded tier served ", batches.size(),
                   " batches on ", shards, " shards (",
                   toString(config_.placement), " placement): ",
                   report.requestsPerSecond(), " req/s, ",
                   report.crossShardQueries, " cross-shard queries");
    return report;
}

std::vector<ShardMove>
ShardedServingTier::rebalance()
{
    std::vector<ShardMove> moves =
        router_.rebalance(refsPerTable_, config_.rebalanceThreshold);
    router_.apply(moves);
    rebalanceMoves_ += moves.size();
    return moves;
}

void
ShardedServingTier::registerStats(StatGroup &group)
{
    group.addCounter("batches", servedBatches_,
                     "batches served through the sharded tier");
    group.addCounter("queries", servedQueries_,
                     "queries served through the sharded tier");
    group.addCounter("crossShardQueries", crossShardQueries_,
                     "queries whose indices spanned more than one shard");
    group.addCounter("combineTicks", combineTicks_,
                     "serial cross-shard combine port busy time");
    group.addCounter("rebalanceMoves", rebalanceMoves_,
                     "table moves applied by the rebalance hook");
    group.addFormula(
        "imbalance", [this] { return observedImbalance(); },
        "max/mean per-shard load over the accumulated reference "
        "counts (1.0 = balanced)");
    for (unsigned s = 0; s < config_.shards; ++s) {
        const std::string prefix = "shard" + std::to_string(s);
        group.addCounter(prefix + ".subBatches", *perShardSubBatches_[s],
                         "sub-batches routed to shard " +
                             std::to_string(s));
        group.addCounter(prefix + ".refs", *perShardRefs_[s],
                         "index references routed to shard " +
                             std::to_string(s));
    }
}

void
ShardedServingTier::printShardScoreboard(std::ostream &os,
                                         const ShardedReport &report) const
{
    std::uint64_t totalRefs = 0;
    for (std::uint64_t r : report.refsPerShard)
        totalRefs += r;
    const double makespan = static_cast<double>(report.makespan);

    TextTable table("sharded serving scoreboard (" +
                    std::string(toString(config_.placement)) +
                    " placement)");
    table.setHeader({"shard", "subBatches", "refs", "share%", "rps",
                     "notes"});
    for (unsigned s = 0; s < config_.shards; ++s) {
        const double share = totalRefs == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.refsPerShard[s]) /
                  static_cast<double>(totalRefs);
        table.row("shard" + std::to_string(s),
                  report.subBatchesPerShard[s], report.refsPerShard[s],
                  TextTable::num(share, 1),
                  TextTable::num(report.perShard[s].requestsPerSecond(),
                                 0),
                  "engines=" + std::to_string(config_.serving.engines));
    }
    std::uint64_t multiShard = 0;
    for (const ShardedBatchTrace &t : report.batches)
        multiShard += t.shardsTouched > 1;
    table.row("combine", multiShard, report.crossShardQueries,
              makespan > 0.0
                  ? TextTable::num(
                        100.0 * static_cast<double>(report.combineBusy) /
                            makespan, 1)
                  : "-",
              "-",
              "imbalance=" + TextTable::num(report.loadImbalance(), 2) +
                  ", refs col = cross-shard queries");
    table.print(os);
    for (unsigned s = 0; s < config_.shards; ++s) {
        os << "shard " << s << " pipeline:\n";
        pipelines_[s]->printHealthScoreboard(os, report.perShard[s]);
    }
}

} // namespace fafnir::core
