/**
 * @file
 * Buffer sizing model (the paper's Table I).
 *
 * Each PE buffer entry holds a 512 B value and a header. The header's
 * indices field stores up to q = 16 vector ids of 5 bits each (10 B, the
 * "16 x 5/8" of Section IV-B) and its queries field holds up to seven
 * full query residuals (7 x 16 x 5 bits = 70 B), for 592 B per entry.
 * With n = m = B entries per PE this reproduces the paper's 4.6 / 9.3 /
 * 18.5 KB PE buffers and the 7-PE DIMM/rank node totals of 32.4 / 64.8 /
 * 129.5 KB for batch sizes 8 / 16 / 32.
 */

#ifndef FAFNIR_FAFNIR_SIZING_HH
#define FAFNIR_FAFNIR_SIZING_HH

namespace fafnir::core
{

/** Analytical buffer sizing of PEs and nodes. */
struct BufferSizing
{
    /** Maximum indices per query. */
    unsigned qMax = 16;
    /** Bits per vector id (32 embedding tables -> 5 bits). */
    unsigned indexBits = 5;
    /** Value payload per entry. */
    unsigned valueBytes = 512;
    /** Queries-field capacity in whole query residuals. */
    unsigned residualSlots = 7;

    /** Header bytes: indices field + queries field. */
    double
    headerBytes() const
    {
        const unsigned slots = qMax + residualSlots * qMax;
        return static_cast<double>(slots) * indexBits / 8.0;
    }

    double entryBytes() const { return valueBytes + headerBytes(); }

    /** One PE's buffer for hardware batch size @p batch (n = m = B). */
    double
    peBufferKiB(unsigned batch) const
    {
        return static_cast<double>(batch) * entryBytes() / 1024.0;
    }

    /** A DIMM/rank node holds @p pes PEs (7 in the paper's Figure 4a). */
    double
    dimmRankNodeKiB(unsigned batch, unsigned pes = 7) const
    {
        return peBufferKiB(batch) * pes;
    }

    /** The channel node holds @p pes PEs (3 in Figure 4a). */
    double
    channelNodeKiB(unsigned batch, unsigned pes = 3) const
    {
        return peBufferKiB(batch) * pes;
    }
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_SIZING_HH
