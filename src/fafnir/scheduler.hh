/**
 * @file
 * Root-side read scheduling.
 *
 * Section IV-B: the host compiles a batch into memory-access requests to
 * the ROOT of the tree, which decodes and forwards them to the ranks.
 * That decoder is free to order each rank's reads; ordering by (bank,
 * row) turns unique indices that share a DRAM row (sixteen 512 B vectors
 * per 8 KB row) into row-buffer hits. The scheduler reorders only within
 * a rank — tree correctness is order-independent because flits carry
 * their own headers.
 */

#ifndef FAFNIR_FAFNIR_SCHEDULER_HH
#define FAFNIR_FAFNIR_SCHEDULER_HH

#include <algorithm>

#include "dram/address.hh"
#include "fafnir/host.hh"

namespace fafnir::core
{

/** Ordering policy of each rank's read list. */
enum class ReadOrder
{
    /** Issue in host-compilation order (ascending index). */
    InOrder,
    /** Group reads of the same bank and row together (open-page wins). */
    RowHitFirst,
};

/**
 * Reorder the per-rank read lists of @p prepared under @p policy.
 * InOrder is the identity.
 */
inline void
scheduleReads(PreparedBatch &prepared, ReadOrder policy,
              const dram::AddressMapper &mapper)
{
    if (policy == ReadOrder::InOrder)
        return;
    for (auto &reads : prepared.rankReads) {
        std::stable_sort(
            reads.begin(), reads.end(),
            [&mapper](const RankRead &a, const RankRead &b) {
                const auto ca = mapper.decode(a.address);
                const auto cb = mapper.decode(b.address);
                if (ca.bank != cb.bank)
                    return ca.bank < cb.bank;
                if (ca.row != cb.row)
                    return ca.row < cb.row;
                return ca.column < cb.column;
            });
    }
}

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_SCHEDULER_HH
