/**
 * @file
 * Topology of the Fafnir reduction tree.
 *
 * The tree's leaves attach to the ranks of the memory system; with the
 * default 1PE:2R scale each leaf PE concurrently serves two ranks
 * (Figure 4a), so a 32-rank system has 16 leaf PEs and 31 PEs total. PEs
 * are heap-indexed: the root is PE 1, the children of PE i are 2i and
 * 2i+1, and leaf PEs occupy [numLeafPes, 2*numLeafPes). Rank r (physical
 * global id: channel-major, then DIMM, then rank) feeds leaf PE
 * leafPeOf(r) on side r % ranksPerLeafPe — which keeps each leaf PE,
 * each DIMM/rank node, and the channel node aligned with physical
 * packaging (a DIMM/rank node spans exactly one channel's DIMMs).
 */

#ifndef FAFNIR_FAFNIR_TREE_HH
#define FAFNIR_FAFNIR_TREE_HH

#include "common/intmath.hh"
#include "common/logging.hh"
#include "dram/config.hh"

namespace fafnir::core
{

/** Static shape of the tree. */
class TreeTopology
{
  public:
    /**
     * @param num_ranks physical ranks (leaf data sources).
     * @param ranks_per_leaf_pe the paper's 1PE:2R scale by default; 1 and
     *        4 are the other scales discussed in Section IV-B.
     */
    explicit TreeTopology(unsigned num_ranks, unsigned ranks_per_leaf_pe = 2)
        : numRanks_(num_ranks), ranksPerLeafPe_(ranks_per_leaf_pe)
    {
        FAFNIR_ASSERT(numRanks_ > 0, "tree needs at least one rank");
        FAFNIR_ASSERT(ranksPerLeafPe_ > 0, "ranksPerLeafPe must be > 0");
        numLeafPes_ = divCeil(numRanks_, ranksPerLeafPe_);
        FAFNIR_ASSERT(isPowerOf2(numLeafPes_),
                      "leaf PE count must be a power of two, got ",
                      numLeafPes_);
    }

    unsigned numRanks() const { return numRanks_; }
    unsigned ranksPerLeafPe() const { return ranksPerLeafPe_; }
    unsigned numLeafPes() const { return static_cast<unsigned>(numLeafPes_); }

    /** Total PEs in the tree (2L - 1). */
    unsigned
    numPes() const
    {
        return 2 * numLeafPes() - 1;
    }

    /** PE levels from leaves to root (a 16-leaf tree has 5). */
    unsigned
    numLevels() const
    {
        return floorLog2(numLeafPes()) + 1;
    }

    /** Heap index of the root PE. */
    static constexpr unsigned rootPe() { return 1; }

    bool
    isLeafPe(unsigned pe) const
    {
        return pe >= numLeafPes() && pe < 2 * numLeafPes();
    }

    unsigned
    parent(unsigned pe) const
    {
        FAFNIR_ASSERT(pe > rootPe() && pe <= numPes(), "no parent for ", pe);
        return pe / 2;
    }

    unsigned leftChild(unsigned pe) const { return 2 * pe; }
    unsigned rightChild(unsigned pe) const { return 2 * pe + 1; }

    /** Distance from the leaf level: leaves are 0, the root is
     *  numLevels()-1. */
    unsigned
    heightOf(unsigned pe) const
    {
        FAFNIR_ASSERT(pe >= 1 && pe <= numPes(), "bad PE id ", pe);
        return floorLog2(numLeafPes()) - floorLog2(pe);
    }

    /** Leaf PE fed by physical rank @p rank. */
    unsigned
    leafPeOf(unsigned rank) const
    {
        FAFNIR_ASSERT(rank < numRanks_, "rank ", rank, " out of range");
        return numLeafPes() + rank / ranksPerLeafPe_;
    }

    /** Input side (0 = A, 1 = B) of @p rank at its leaf PE. With more than
     *  two ranks per leaf PE, ranks alternate sides. */
    unsigned
    sideOf(unsigned rank) const
    {
        return (rank % ranksPerLeafPe_) % 2;
    }

    /**
     * Internal tree links: a binary tree with L leaf PEs has 2L - 2 edges.
     * With one output link from the root to the cores per core c, the total
     * is (2L - 2) + c + numRanks rank-attachment links — the paper's
     * connection-count argument (Section IV-A) counts (2m - 2) + c against
     * the all-to-all c * m.
     */
    unsigned
    connectionCount(unsigned cores) const
    {
        return (2 * numLeafPes() - 2) + cores + numRanks_;
    }

    /** All-to-all connection count of the no-NDP baseline. */
    static unsigned
    allToAllConnections(unsigned cores, unsigned memory_devices)
    {
        return cores * memory_devices;
    }

  private:
    unsigned numRanks_;
    unsigned ranksPerLeafPe_;
    std::uint64_t numLeafPes_;
};

/**
 * Grouping of PEs into fabricated nodes (Figure 4a): per channel, one
 * DIMM/rank node spans the subtree over that channel's ranks; one channel
 * node spans the top of the tree across channels.
 */
struct NodeGrouping
{
    unsigned channels = 4;
    unsigned ranksPerChannel = 8;
    unsigned ranksPerLeafPe = 2;

    /** PEs in one DIMM/rank node (7 for 8 ranks at 1PE:2R). */
    unsigned
    pesPerDimmRankNode() const
    {
        return 2 * (ranksPerChannel / ranksPerLeafPe) - 1;
    }

    /** PEs in the channel node (channels - 1). */
    unsigned
    pesPerChannelNode() const
    {
        return channels - 1;
    }

    unsigned
    totalPes() const
    {
        return channels * pesPerDimmRankNode() + pesPerChannelNode();
    }
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_TREE_HH
