/**
 * @file
 * Sorted small index sets — the value domain of Fafnir headers.
 *
 * The `indices` and `queries` fields of a flit header (Section IV-B of the
 * paper) are sets of embedding-vector indices. Headers are tiny (a query
 * holds at most 16 indices), so a sorted vector beats any node-based set:
 * subset/disjointness tests are linear merges and unions are linear too.
 */

#ifndef FAFNIR_FAFNIR_INDEXSET_HH
#define FAFNIR_FAFNIR_INDEXSET_HH

#include <algorithm>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/smallvec.hh"
#include "common/types.hh"
#include "embedding/reduce_kernels.hh"

namespace fafnir::core
{

/** An immutable-ish sorted set of embedding-vector indices. */
class IndexSet
{
  public:
    /**
     * Inline storage: headers are tiny (a query holds at most 16
     * indices, most sets are far smaller), so eight inline slots cover
     * the common case without a heap allocation per header.
     */
    using Storage = SmallVec<IndexId, 8>;

    IndexSet() = default;

    IndexSet(std::initializer_list<IndexId> init)
        : items_(init)
    {
        normalize();
    }

    /** Build from an arbitrary vector (sorted + deduplicated). */
    explicit IndexSet(const std::vector<IndexId> &items)
    {
        items_.reserve(items.size());
        for (IndexId index : items)
            items_.push_back(index);
        normalize();
    }

    /** A singleton set. */
    static IndexSet
    single(IndexId index)
    {
        IndexSet s;
        s.items_.push_back(index);
        return s;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }
    const Storage &items() const { return items_; }

    bool
    contains(IndexId index) const
    {
        return std::binary_search(items_.begin(), items_.end(), index);
    }

    /** True if every element of @p other is in this set. */
    bool
    containsAll(const IndexSet &other) const
    {
        return std::includes(items_.begin(), items_.end(),
                             other.items_.begin(), other.items_.end());
    }

    bool
    disjointWith(const IndexSet &other) const
    {
        auto a = items_.begin();
        auto b = other.items_.begin();
        while (a != items_.end() && b != other.items_.end()) {
            if (*a < *b)
                ++a;
            else if (*b < *a)
                ++b;
            else
                return false;
        }
        return true;
    }

    /** Set union; faults if the operands overlap (reduction must not
     *  double-count a vector). */
    IndexSet
    disjointUnion(const IndexSet &other) const
    {
        FAFNIR_ASSERT(disjointWith(other),
                      "disjointUnion on overlapping sets");
        IndexSet result;
        result.items_.resize(items_.size() + other.items_.size());
        std::merge(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), result.items_.begin());
        return result;
    }

    /** Elements of this set not in @p other. */
    IndexSet
    minus(const IndexSet &other) const
    {
        IndexSet result;
        std::set_difference(items_.begin(), items_.end(),
                            other.items_.begin(), other.items_.end(),
                            std::back_inserter(result.items_));
        return result;
    }

    /**
     * Elements of this set other than @p excluded — equivalent to
     * minus(single(excluded)) but through the SIMD header-build kernel.
     * This is the hot operation of batch prepare: every deduplicated
     * read subtracts its own index from each sharing query's set.
     */
    IndexSet
    minusOne(IndexId excluded) const
    {
        IndexSet result;
        result.items_.resize(items_.size());
        const std::size_t kept = embedding::filterOutSpan(
            result.items_.data(), items_.data(), items_.size(), excluded);
        result.items_.resize(kept);
        return result;
    }

    bool operator==(const IndexSet &other) const = default;

    /** Lexicographic order, usable as a map key. */
    bool
    operator<(const IndexSet &other) const
    {
        return items_ < other.items_;
    }

    std::string
    toString() const
    {
        std::string s = "{";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                s += ',';
            s += std::to_string(items_[i]);
        }
        return s + "}";
    }

  private:
    void
    normalize()
    {
        std::sort(items_.begin(), items_.end());
        items_.erase(std::unique(items_.begin(), items_.end()),
                     items_.end());
    }

    Storage items_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_INDEXSET_HH
