/**
 * @file
 * Recycling pool for embedding-value buffers.
 *
 * A functional tree evaluation churns through one value vector per
 * reduce/forward output at every level; without reuse each of those is
 * a fresh heap allocation that dies one level up. A VectorPool keeps
 * the dead buffers and hands their capacity back to the next output,
 * so a steady-state batch run allocates only for its peak working set.
 *
 * The pool is a per-evaluation object, not a global: FunctionalTree
 * owns one per run() and threads it through ProcessingElement. Not
 * thread-safe — parallel sweeps use one pool per evaluation, which is
 * also what keeps pooled and unpooled runs bit-identical.
 */

#ifndef FAFNIR_FAFNIR_POOL_HH
#define FAFNIR_FAFNIR_POOL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/faultinject.hh"
#include "embedding/table.hh"

namespace fafnir::core
{

/** Recycles embedding::Vector buffers between tree levels. */
class VectorPool
{
  public:
    /** Counters for sizing and for asserting reuse in tests. */
    struct Stats
    {
        std::uint64_t acquires = 0;
        /** Acquires served from a recycled buffer (no allocation). */
        std::uint64_t reuses = 0;
        std::uint64_t releases = 0;
        /** Acquires forced to allocate by the pool_exhaust fault hook. */
        std::uint64_t exhaustions = 0;
    };

    /**
     * A vector of @p size elements with unspecified contents — callers
     * overwrite every element. Reuses a released buffer's capacity when
     * one is available.
     *
     * The pool_exhaust fault hook models a PE whose value-buffer SRAM is
     * out of free lines: the acquire falls back to a fresh allocation
     * (the simulator's stand-in for a spill). Contents are identical
     * either way, so injected exhaustion never perturbs results — only
     * the reuse/allocation accounting that capacity studies read.
     */
    embedding::Vector
    acquire(std::size_t size)
    {
        ++stats_.acquires;
        if (fault::FaultPlan *p = fault::plan(); p != nullptr) {
            if (p->shouldFire(fault::Hook::PoolExhaust)) {
                ++stats_.exhaustions;
                return embedding::Vector(size);
            }
        }
        if (free_.empty())
            return embedding::Vector(size);
        ++stats_.reuses;
        embedding::Vector v = std::move(free_.back());
        free_.pop_back();
        v.resize(size);
        return v;
    }

    /** Return a dead buffer's capacity to the pool. */
    void
    release(embedding::Vector &&v)
    {
        if (v.capacity() == 0)
            return;
        ++stats_.releases;
        free_.push_back(std::move(v));
        free_.back().clear();
    }

    /** Strip and recycle the value buffers of a consumed item list. */
    template <typename Items>
    void
    releaseValues(Items &items)
    {
        for (auto &item : items)
            release(std::move(item.value));
    }

    const Stats &stats() const { return stats_; }
    std::size_t idleBuffers() const { return free_.size(); }

  private:
    std::vector<embedding::Vector> free_;
    Stats stats_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_POOL_HH
