/**
 * @file
 * Processing element: the node of the Fafnir reduction tree.
 *
 * A PE (Figure 5) has two input FIFO buffers, A and B, a bank of compute
 * units, and a merge unit. For each buffered item it decides, per query in
 * the item's header, whether to REDUCE it with a matching item of the
 * opposite input (concatenating `indices` fields and shrinking the
 * `queries` field) or to FORWARD it unchanged. The merge unit then (a)
 * eliminates redundant identical outputs and (b) merges outputs that carry
 * the same value — equal `indices` sets — by concatenating their `queries`
 * fields, which is what bounds the output count by the batch size.
 *
 * Pairing policy. The paper compares every element of one input against
 * all elements of the other. When a query has several candidate partners
 * (two of its vectors arrived on the same side), an all-pairs reduce would
 * double-count values, so the compute units pair the i-th matching entry
 * of A with the i-th matching entry of B per query; unpaired entries are
 * forwarded. This keeps every query's in-flight items disjoint partial
 * sums — the invariant the root combiner relies on.
 */

#ifndef FAFNIR_FAFNIR_PE_HH
#define FAFNIR_FAFNIR_PE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "embedding/quantize.hh"
#include "fafnir/item.hh"

namespace fafnir::core
{

class VectorPool;

/**
 * Latencies of the compute-unit components in PE cycles (the paper's
 * Table IV, 200 MHz FPGA implementation). Reduce and forward are parallel
 * paths; the per-item critical path is compare + the action.
 */
struct PeLatency
{
    Cycles compare = 1;
    Cycles reduceValue = 2;
    Cycles reduceHeader = 1;
    Cycles forward = 1;
    /** Merge-unit pass over the raw outputs. */
    Cycles merge = 1;
    /** Output initiation interval (pipelined, one item per cycle). */
    Cycles issue = 1;

    Cycles
    reducePath() const
    {
        return compare + std::max(reduceValue, reduceHeader);
    }

    Cycles forwardPath() const { return compare + forward; }
};

/** What happened to produce one output item (drives timing and stats). */
enum class PeAction : std::uint8_t
{
    Reduce,
    Forward,
};

/** Per-PE activity counters for one batch. */
struct PeActivity
{
    std::uint64_t compares = 0;
    std::uint64_t reduces = 0;
    std::uint64_t forwards = 0;
    /** Outputs dropped as exact duplicates by the merge unit. */
    std::uint64_t duplicatesDropped = 0;
    /** Header concatenations performed by the merge unit. */
    std::uint64_t headersMerged = 0;
    /**
     * Compressed-payload codec work at the meeting logic (non-fp32
     * formats only): a reduce dequantizes both operands and requantizes
     * the combined output for the uplink; a forward passes codes
     * through untouched. The functional values stay the exact fp32
     * partials of the leaf round-trip (see embedding/quantize.hh) —
     * these counters drive the byte/energy model, not the arithmetic.
     */
    std::uint64_t dequants = 0;
    std::uint64_t requants = 0;

    PeActivity &
    operator+=(const PeActivity &other)
    {
        compares += other.compares;
        reduces += other.reduces;
        forwards += other.forwards;
        duplicatesDropped += other.duplicatesDropped;
        headersMerged += other.headersMerged;
        dequants += other.dequants;
        requants += other.requants;
        return *this;
    }
};

/** Which input buffer entry contributed to an output. */
struct Provenance
{
    /** 0 = input A, 1 = input B. */
    std::uint8_t side = 0;
    /** Position within that input list. */
    std::uint16_t index = 0;

    bool operator==(const Provenance &other) const = default;
};

/** An output item tagged with the action that produced it. */
struct PeOutput
{
    Item item;
    PeAction action = PeAction::Forward;
    /** Input entries this output depends on (post-merge union). */
    std::vector<Provenance> sources;
};

/**
 * Functional model of one PE processing the complete input sets of one
 * batch. Stateless; the tree evaluators own buffering and timing.
 */
class ProcessingElement
{
  public:
    /**
     * Process inputs A and B.
     * @param values when false, item values are not combined (timing-only
     *        runs on large batches skip the arithmetic).
     * @param op element-wise operator of the reduce path.
     * @param pool optional buffer recycler for output values; results
     *        are bit-identical with or without one.
     * @param payload transport encoding of the link payloads; non-fp32
     *        formats count dequant/requant codec work per meeting in
     *        @p activity (values are unchanged — the leaf round-trip
     *        already fixed them).
     */
    static std::vector<PeOutput>
    process(const std::vector<Item> &a, const std::vector<Item> &b,
            PeActivity &activity, bool values = true,
            embedding::ReduceOp op = embedding::ReduceOp::Sum,
            VectorPool *pool = nullptr,
            embedding::PayloadFormat payload =
                embedding::PayloadFormat::Fp32);

    /**
     * Upper bound on outputs: min(nm + n + m, batch) — Section IV-B.
     */
    static std::size_t
    outputBound(std::size_t n, std::size_t m, std::size_t batch)
    {
        return std::min(n * m + n + m, batch);
    }
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_PE_HH
