/**
 * @file
 * Implementation of the Fafnir timing engine.
 */

#include "engine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fafnir::core
{

FafnirEngine::FafnirEngine(dram::MemorySystem &memory,
                           const embedding::VectorLayout &layout,
                           const EngineConfig &config)
    : memory_(memory), layout_(layout), config_(config),
      topology_(memory.geometry().totalRanks(), config.ranksPerLeafPe),
      host_(layout), tree_(topology_),
      pePeriod_(periodFromMhz(config.peClockMhz))
{
    if (config_.interactive)
        config_.latency.compare = 0; // no batch comparisons (§IV-C)
}

LookupTiming
FafnirEngine::lookup(const embedding::Batch &batch, Tick start)
{
    const unsigned capacity =
        config_.interactive ? 1 : config_.hwBatch;
    if (batch.size() <= capacity) {
        PreparedBatch prepared =
            host_.prepare(batch, config_.dedup, config_.payload);
        scheduleReads(prepared, config_.readOrder, memory_.mapper());
        return runPrepared(prepared, start, 0);
    }

    // Serve the software batch as hardware sub-batches: sub-batch i+1's
    // reads are admitted once i's drain from memory; root deliveries
    // stay ordered.
    LookupTiming merged;
    merged.issued = start;
    merged.memFirst = MaxTick;
    merged.queryComplete.assign(batch.size(), 0);
    Tick sub_start = start;
    Tick min_complete = 0;
    for (std::size_t first = 0; first < batch.size();
         first += capacity) {
        const std::size_t last =
            std::min(batch.size(), first + capacity);
        embedding::Batch sub;
        sub.queries.reserve(last - first);
        for (std::size_t i = first; i < last; ++i) {
            embedding::Query q = batch.queries[i];
            q.id = static_cast<QueryId>(i - first);
            sub.queries.push_back(std::move(q));
        }
        PreparedBatch sub_prepared =
            host_.prepare(sub, config_.dedup, config_.payload);
        scheduleReads(sub_prepared, config_.readOrder, memory_.mapper());
        LookupTiming t =
            runPrepared(sub_prepared, sub_start, min_complete);
        for (std::size_t i = first; i < last; ++i)
            merged.queryComplete[i] = t.queryComplete[i - first];
        merged.memFirst = std::min(merged.memFirst, t.memFirst);
        merged.memLast = std::max(merged.memLast, t.memLast);
        merged.complete = std::max(merged.complete, t.complete);
        merged.memAccesses += t.memAccesses;
        merged.uniqueCount += t.uniqueCount;
        merged.totalReferences += t.totalReferences;
        merged.rootCombines += t.rootCombines;
        merged.maxPeOutputs = std::max(merged.maxPeOutputs,
                                       t.maxPeOutputs);
        merged.bufferOverflows += t.bufferOverflows;
        merged.payload = t.payload;
        merged.dramPayloadBytes += t.dramPayloadBytes;
        merged.linkPayloadBytes += t.linkPayloadBytes;
        merged.activity += t.activity;
        sub_start = t.memLast;
        min_complete = t.complete;
    }
    return merged;
}

std::vector<LookupTiming>
FafnirEngine::lookupMany(const std::vector<embedding::Batch> &batches,
                         Tick start)
{
    std::vector<LookupTiming> timings;
    timings.reserve(batches.size());
    Tick min_complete = 0;
    for (const auto &batch : batches) {
        PreparedBatch prepared =
            host_.prepare(batch, config_.dedup, config_.payload);
        scheduleReads(prepared, config_.readOrder, memory_.mapper());
        LookupTiming t = runPrepared(prepared, start, min_complete);
        min_complete = t.complete;
        timings.push_back(std::move(t));
    }
    return timings;
}

LookupTiming
FafnirEngine::lookupPrepared(PreparedBatch &prepared, Tick start)
{
    scheduleReads(prepared, config_.readOrder, memory_.mapper());
    return runPrepared(prepared, start, 0);
}

LookupTiming
FafnirEngine::runPrepared(const PreparedBatch &prepared, Tick start,
                          Tick min_complete)
{
    // Transport width under the batch's payload format: fp32 keeps the
    // historical 4*dim; int8/twobit shrink every DRAM read and link
    // transfer to the compressed width (values were round-tripped at
    // prepare time, so the arithmetic downstream is unchanged).
    const auto vector_bytes = static_cast<unsigned>(
        prepared.vectorPayloadBytes(layout_.tables().dim()));
    const unsigned num_pes = topology_.numPes();

    LookupTiming timing;
    timing.issued = start;
    timing.memAccesses = prepared.accessCount;
    timing.uniqueCount = prepared.uniqueCount;
    timing.totalReferences = prepared.totalReferences;
    timing.payload = prepared.payload;
    timing.dramPayloadBytes =
        static_cast<std::uint64_t>(prepared.accessCount) * vector_bytes;

    // 1. Issue all reads. Per-rank lists are issued in order; the memory
    //    model serializes bank/bus conflicts internally. Arrival lists are
    //    built in the same (rank-ascending, in-list) order the functional
    //    evaluator uses to assemble leaf inputs.
    std::vector<std::vector<Tick>> arrive_a(num_pes + 1);
    std::vector<std::vector<Tick>> arrive_b(num_pes + 1);
    timing.memFirst = MaxTick;
    timing.memLast = start;
    for (unsigned rank = 0; rank < topology_.numRanks(); ++rank) {
        const unsigned pe = topology_.leafPeOf(rank);
        auto &side = topology_.sideOf(rank) == 0 ? arrive_a[pe]
                                                 : arrive_b[pe];
        for (const auto &read : prepared.rankReads[rank]) {
            const auto result = memory_.read(read.address, vector_bytes,
                                             start, dram::Destination::Ndp);
            side.push_back(result.complete);
            timing.memFirst = std::min(timing.memFirst, result.firstData);
            timing.memLast = std::max(timing.memLast, result.complete);
        }
    }
    if (timing.memFirst == MaxTick)
        timing.memFirst = start;

    // 2. Functional evaluation (headers only) with traces.
    const TreeRun run = tree_.run(prepared, /*values=*/false,
                                  /*keep_trace=*/true);
    timing.activity = run.total;
    timing.rootCombines = run.rootCombines;
    timing.maxPeOutputs = run.maxPeOutputs;
    if (run.maxPeOutputs > config_.hwBatch)
        ++timing.bufferOverflows;

    // 3. Replay traces with latencies, leaves to root.
    auto align = [this](Tick t) {
        const Tick rem = t % pePeriod_;
        return rem == 0 ? t : t + (pePeriod_ - rem);
    };
    std::vector<std::vector<Tick>> out_times(num_pes + 1);
    for (unsigned pe = num_pes; pe >= 1; --pe) {
        const std::vector<Tick> &in_a = topology_.isLeafPe(pe)
            ? arrive_a[pe]
            : out_times[topology_.leftChild(pe)];
        const std::vector<Tick> &in_b = topology_.isLeafPe(pe)
            ? arrive_b[pe]
            : out_times[topology_.rightChild(pe)];

        Tick ready = start;
        for (Tick t : in_a)
            ready = std::max(ready, t);
        for (Tick t : in_b)
            ready = std::max(ready, t);
        ready = align(ready);

        // Crossing from a DIMM/rank-node chip into the channel-node chip
        // costs an inter-chip link hop (Figure 4a packaging): the link is
        // charged on the outputs of the highest PE still inside a
        // DIMM/rank node.
        Cycles link = 0;
        if (topology_.numLevels() > config_.channelNodeLevels &&
            topology_.heightOf(pe) ==
                topology_.numLevels() - 1 - config_.channelNodeLevels) {
            link = config_.interNodeLinkCycles;
        }

        const auto &outputs = run.trace[pe].outputs;
        // Every traced output crosses one link upward (the root's cross
        // the root-to-host link) carrying one vector payload.
        timing.linkPayloadBytes +=
            static_cast<std::uint64_t>(outputs.size()) * vector_bytes;
        out_times[pe].reserve(outputs.size());
        for (std::size_t k = 0; k < outputs.size(); ++k) {
            const Cycles action = outputs[k].action == PeAction::Reduce
                ? config_.latency.reducePath()
                : config_.latency.forwardPath();
            const Cycles total = action + config_.latency.merge + link +
                                 k * config_.latency.issue;
            out_times[pe].push_back(ready + total * pePeriod_);
        }
        if (pe == 1)
            break;
    }

    // 4. Per-query completion at the root, then serialize result vectors
    //    on the root-to-host link.
    const std::size_t num_queries = prepared.querySets.size();
    std::vector<std::pair<Tick, QueryId>> finish_order;
    finish_order.reserve(num_queries);
    const auto &root_out = run.rootOutputs;
    const auto &root_times = out_times[TreeTopology::rootPe()];
    FAFNIR_ASSERT(root_times.size() == root_out.size(),
                  "root trace size mismatch");
    for (QueryId q = 0; q < num_queries; ++q) {
        Tick tq = start;
        for (std::size_t k = 0; k < root_out.size(); ++k)
            if (root_out[k].item.findQuery(q))
                tq = std::max(tq, root_times[k]);
        // Residual disjoint partials are summed at the root output stage.
        tq += (run.rootItemsPerQuery[q] - 1) *
              config_.latency.reduceValue * pePeriod_;
        finish_order.emplace_back(tq, q);
    }
    std::sort(finish_order.begin(), finish_order.end());

    const auto transfer_ticks = static_cast<Tick>(
        static_cast<double>(vector_bytes) / config_.rootLinkGBs * 1000.0);
    // Finished vectors leave over c parallel root-to-host links.
    FAFNIR_ASSERT(config_.hostLinks >= 1, "need at least one host link");
    std::vector<Tick> link_free(config_.hostLinks, min_complete);
    Tick last = min_complete;
    timing.queryComplete.assign(num_queries, 0);
    for (const auto &[ready, q] : finish_order) {
        auto earliest = static_cast<std::size_t>(
            std::min_element(link_free.begin(), link_free.end()) -
            link_free.begin());
        const Tick done =
            std::max(ready, link_free[earliest]) + transfer_ticks;
        timing.queryComplete[q] = done + config_.hostReceiveOverhead;
        link_free[earliest] = done;
        last = std::max(last, done);
    }
    timing.complete = last + config_.hostReceiveOverhead;
    timing.memLast = std::min(timing.memLast, timing.complete);

    ++batches_;
    queries_ += num_queries;
    reads_ += timing.memAccesses;
    reduces_ += timing.activity.reduces;
    forwards_ += timing.activity.forwards;
    rootCombines_ += timing.rootCombines;
    bufferOverflows_ += timing.bufferOverflows;
    dramPayloadBytes_ += timing.dramPayloadBytes;
    linkPayloadBytes_ += timing.linkPayloadBytes;
    return timing;
}

void
FafnirEngine::registerStats(StatGroup &group) const
{
    group.addCounter("batches", batches_, "hardware batches served");
    group.addCounter("queries", queries_, "queries completed");
    group.addCounter("reads", reads_, "DRAM vector reads issued");
    group.addCounter("reduces", reduces_, "PE reduce operations");
    group.addCounter("forwards", forwards_, "PE forward operations");
    group.addCounter("rootCombines", rootCombines_,
                     "root-stage partial combinations");
    group.addCounter("bufferOverflows", bufferOverflows_,
                     "batches whose PE occupancy exceeded hwBatch");
    group.addCounter("dramPayloadBytes", dramPayloadBytes_,
                     "modelled payload bytes read from DRAM");
    group.addCounter("linkPayloadBytes", linkPayloadBytes_,
                     "modelled payload bytes over PE/root links");
    group.addFormula(
        "readsPerQuery",
        [this] {
            return queries_.value() == 0
                ? 0.0
                : static_cast<double>(reads_.value()) /
                      static_cast<double>(queries_.value());
        },
        "mean DRAM reads per query (dedup efficiency)");
}

} // namespace fafnir::core
