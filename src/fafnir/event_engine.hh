/**
 * @file
 * Event-driven timing engine for Fafnir embedding lookup.
 *
 * Where FafnirEngine replays traces with a per-PE barrier (a PE's
 * outputs start after its last input arrives), this engine runs the tree
 * as a discrete-event pipeline on the simulation kernel:
 *
 *  - DRAM completions are events; each delivers one flit to a leaf FIFO.
 *  - A PE emits its k-th output as soon as that output's provenance
 *    items have arrived (plus, for a FORWARD, the opposite input side
 *    being complete — "no match" is only knowable then), one output per
 *    issue cycle through the pipeline.
 *  - Finite input FIFOs (hwBatch entries per side): an arrival beyond
 *    capacity is charged an overflow penalty and counted, modelling the
 *    spill/double-buffer pressure of oversubscribed batches without
 *    deadlocking the pipeline.
 *
 * This realizes the paper's "simultaneously activates distinct routes of
 * the tree from arbitrary leaves to the root": queries whose operands
 * arrive early reach the root before stragglers of other queries, which
 * the analytic engine's barriers cannot express. Functional behavior is
 * identical by construction (both replay the same FunctionalTree run).
 */

#ifndef FAFNIR_FAFNIR_EVENT_ENGINE_HH
#define FAFNIR_FAFNIR_EVENT_ENGINE_HH

#include <iosfwd>
#include <vector>

#include "common/stats.hh"
#include "fafnir/engine.hh"

namespace fafnir::core
{

/** Event-driven engine configuration. */
struct EventEngineConfig
{
    EngineConfig base;
    /** Extra cycles charged to an arrival that overflows a PE FIFO. */
    Cycles overflowPenalty = 4;
    /** Record a per-PE timeline of deliveries and emissions. */
    bool recordTimeline = false;
    /** Compute the reduced query vectors and return them in
     *  EventLookupTiming::results (differential conformance checks). */
    bool computeValues = false;
    /** Reduce operator applied when computing values. */
    embedding::ReduceOp reduceOp = embedding::ReduceOp::Sum;
};

/** One observable pipeline event (for timelines/debugging). */
struct TimelineEvent
{
    Tick tick = 0;
    unsigned pe = 0;
    /** "deliver" or "emit". */
    const char *kind = "";
    /** Input position (deliver) or output position (emit). */
    std::size_t index = 0;
};

/** Timing plus pipeline-pressure observability. */
struct EventLookupTiming : LookupTiming
{
    /** Arrivals that found their FIFO side at or beyond capacity. */
    std::uint64_t fifoOverflows = 0;
    /** Outputs whose emission waited on the opposite side (forwards). */
    std::uint64_t forwardWaits = 0;
    /** Deliveries stalled by the pe_backpressure fault hook. */
    std::uint64_t injectedBackpressure = 0;
    /** Chronological pipeline events (when recordTimeline is set). */
    std::vector<TimelineEvent> timeline;
    /** Reduced query vectors (when computeValues is set). */
    std::vector<embedding::Vector> results;
};

/** Render a timeline as tab-separated text (tick, pe, kind, index). */
void writeTimeline(std::ostream &os,
                   const std::vector<TimelineEvent> &timeline);

/** Lifetime activity counters of one PE, accumulated across lookups. */
struct PeTelemetry
{
    Counter deliveries;
    Counter outputs;
    Counter reduces;
    Counter forwards;
    /** Ticks the PE's output port was occupied by emissions. */
    Counter busyTicks;
};

/** The event-driven Fafnir lookup model. */
class EventDrivenEngine
{
  public:
    /**
     * @param store when non-null, leaf items carry real vector values so
     *        computeValues runs can return the reduced query vectors.
     */
    EventDrivenEngine(dram::MemorySystem &memory,
                      const embedding::VectorLayout &layout,
                      const EventEngineConfig &config,
                      const embedding::EmbeddingStore *store = nullptr);

    /** Run one batch starting at @p start. */
    EventLookupTiming lookup(const embedding::Batch &batch, Tick start);

    /**
     * Run one pre-compiled batch starting at @p start — the serving
     * pipeline's entry, where host prepare happened upstream (possibly
     * overlapped with an earlier batch's execution on this engine).
     * Takes the batch by reference: read scheduling reorders per-rank
     * lists in place (idempotently), and the caller keeps ownership of
     * the value buffers (the pipeline's per-slot arenas).
     */
    EventLookupTiming lookupPrepared(PreparedBatch &prepared, Tick start);

    /** Run batches back to back, admitting each batch's reads once the
     *  previous batch's memory traffic drains. */
    std::vector<EventLookupTiming>
    lookupMany(const std::vector<embedding::Batch> &batches, Tick start);

    const TreeTopology &topology() const { return topology_; }
    const EventEngineConfig &config() const { return config_; }

    /** Per-PE activity since construction (index 1..numPes). */
    const std::vector<PeTelemetry> &peTelemetry() const { return peStats_; }

    /** Register per-PE counters and occupancy formulas into @p group. */
    void registerStats(StatGroup &group) const;

  private:
    dram::MemorySystem &memory_;
    const embedding::VectorLayout &layout_;
    EventEngineConfig config_;
    TreeTopology topology_;
    Host host_;
    FunctionalTree tree_;
    Tick pePeriod_;
    /** Indexed by PE id (entry 0 unused); never resized after build. */
    std::vector<PeTelemetry> peStats_;
    /** Simulated ticks covered by lookups (for occupancy formulas). */
    Counter activeTicks_;
};

} // namespace fafnir::core

#endif // FAFNIR_FAFNIR_EVENT_ENGINE_HH
