/**
 * @file
 * Implementation of the event-driven Fafnir engine.
 */

#include "event_engine.hh"

#include <algorithm>
#include <array>
#include <ostream>
#include <functional>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/attribution.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::core
{

namespace
{

/** Live pipeline state of one PE during a run. */
struct PeRun
{
    /** Arrival tick per input entry, per side; MaxTick = not arrived. */
    std::array<std::vector<Tick>, 2> arrival;
    std::array<std::size_t, 2> arrived{0, 0};
    std::array<std::size_t, 2> expected{0, 0};
    /** Outputs remaining to consume each input (FIFO occupancy). */
    std::array<std::vector<unsigned>, 2> remainingUses;
    std::array<std::size_t, 2> occupancy{0, 0};
    /** Per-output emitted flag. */
    std::vector<bool> emitted;
    std::vector<bool> countedForwardWait;
    /** Emission tick per output (attribution back-walk). */
    std::vector<Tick> emitTick;
    std::size_t emittedCount = 0;
    /** Output-port availability (one emission per issue interval). */
    Tick pipeFree = 0;
};

/** One leaf input's originating DRAM read, per (pe, side, position). */
struct LeafRead
{
    unsigned rank = 0;
    Tick firstData = 0;
    Tick complete = 0;
    std::uint64_t flow = 0;
};

/** Service-track thread for per-query delivery spans (0..2 are the
 *  open-loop queue/serve/guard rows). */
constexpr int kServiceDeliveryTid = 3;

} // namespace

EventDrivenEngine::EventDrivenEngine(dram::MemorySystem &memory,
                                     const embedding::VectorLayout &layout,
                                     const EventEngineConfig &config,
                                     const embedding::EmbeddingStore *store)
    : memory_(memory), layout_(layout), config_(config),
      topology_(memory.geometry().totalRanks(),
                config.base.ranksPerLeafPe),
      host_(layout, store), tree_(topology_),
      pePeriod_(periodFromMhz(config.base.peClockMhz)),
      peStats_(topology_.numPes() + 1)
{
    if (config_.base.interactive)
        config_.base.latency.compare = 0;
}

void
EventDrivenEngine::registerStats(StatGroup &group) const
{
    for (unsigned pe = 1; pe <= topology_.numPes(); ++pe) {
        const std::string prefix = "pe" + std::to_string(pe);
        const PeTelemetry &activity = peStats_[pe];
        group.addCounter(prefix + ".deliveries", activity.deliveries,
                         "inputs delivered to PE " + std::to_string(pe));
        group.addCounter(prefix + ".outputs", activity.outputs,
                         "outputs emitted");
        group.addCounter(prefix + ".reduces", activity.reduces,
                         "reduce emissions");
        group.addCounter(prefix + ".forwards", activity.forwards,
                         "forward emissions");
        group.addFormula(
            prefix + ".occupancy",
            [this, pe] {
                const std::uint64_t active = activeTicks_.value();
                return active == 0
                    ? 0.0
                    : static_cast<double>(
                          peStats_[pe].busyTicks.value()) /
                          static_cast<double>(active);
            },
            "output-port busy fraction over simulated time");
    }
}

std::vector<EventLookupTiming>
EventDrivenEngine::lookupMany(const std::vector<embedding::Batch> &batches,
                              Tick start)
{
    std::vector<EventLookupTiming> timings;
    timings.reserve(batches.size());
    Tick t = start;
    for (const auto &batch : batches) {
        timings.push_back(lookup(batch, t));
        t = timings.back().memLast;
    }
    return timings;
}

EventLookupTiming
EventDrivenEngine::lookup(const embedding::Batch &batch, Tick start)
{
    PreparedBatch prepared =
        host_.prepare(batch, config_.base.dedup, config_.base.payload);
    return lookupPrepared(prepared, start);
}

EventLookupTiming
EventDrivenEngine::lookupPrepared(PreparedBatch &prepared, Tick start)
{
    // Transport width under the batch's payload format (fp32 keeps the
    // historical 4*dim): shared by the DRAM reads, every PE-link
    // emission, and the root-link serialization below.
    const auto vector_bytes = static_cast<unsigned>(
        prepared.vectorPayloadBytes(layout_.tables().dim()));
    const unsigned num_pes = topology_.numPes();
    EventQueue &eq = memory_.eventq();
    // The event clock only moves forward; an earlier logical start would
    // schedule completions in the past.
    start = std::max(start, eq.now());

    scheduleReads(prepared, config_.base.readOrder, memory_.mapper());
    TreeRun run = tree_.run(prepared, config_.computeValues,
                            /*keep_trace=*/true, config_.reduceOp);

    EventLookupTiming timing;
    timing.issued = start;
    timing.memAccesses = prepared.accessCount;
    timing.uniqueCount = prepared.uniqueCount;
    timing.totalReferences = prepared.totalReferences;
    timing.activity = run.total;
    timing.rootCombines = run.rootCombines;
    timing.maxPeOutputs = run.maxPeOutputs;
    timing.payload = prepared.payload;
    timing.dramPayloadBytes =
        static_cast<std::uint64_t>(prepared.accessCount) * vector_bytes;
    if (run.maxPeOutputs > config_.base.hwBatch)
        ++timing.bufferOverflows;

    // --- Set up per-PE pipeline state from the functional trace. --------
    std::vector<PeRun> pes(num_pes + 1);
    for (unsigned pe = 1; pe <= num_pes; ++pe) {
        PeRun &state = pes[pe];
        const PeTrace &trace = run.trace[pe];
        state.expected = {trace.inputsA.size(), trace.inputsB.size()};
        for (int side = 0; side < 2; ++side) {
            state.arrival[side].assign(state.expected[side], MaxTick);
            state.remainingUses[side].assign(state.expected[side], 0);
        }
        for (const auto &out : trace.outputs)
            for (const Provenance &src : out.sources)
                ++state.remainingUses[src.side][src.index];
        state.emitted.assign(trace.outputs.size(), false);
        state.countedForwardWait.assign(trace.outputs.size(), false);
        state.emitTick.assign(trace.outputs.size(), MaxTick);
        state.pipeFree = start;
    }

    std::vector<Tick> root_times(run.rootOutputs.size(), MaxTick);

    // --- Timeline tracing (no-ops when no sink is installed). -----------
    telemetry::TraceSink *ts = telemetry::sink();
    telemetry::Attribution *attr = telemetry::attribution();
    const std::uint64_t batch_ordinal = attr ? attr->beginBatch() : 0;
    if (ts) {
        for (unsigned pe = 1; pe <= num_pes; ++pe) {
            ts->setThreadName(
                telemetry::kPidTree, static_cast<int>(pe),
                "PE " + std::to_string(pe) + " (h" +
                    std::to_string(topology_.heightOf(pe)) + ")");
        }
    }
    // Items buffered per tree level, emitted as one counter track each.
    std::vector<std::int64_t> level_occupancy(topology_.numLevels(), 0);
    auto occupancy_changed = [&](unsigned pe, int delta, Tick at) {
        if (!ts)
            return;
        const unsigned height = topology_.heightOf(pe);
        level_occupancy[height] += delta;
        ts->counterEvent(
            telemetry::kPidTree,
            "tree.occupancy.h" + std::to_string(height), at,
            static_cast<double>(level_occupancy[height]));
    };

    // --- Pipeline dynamics. ---------------------------------------------
    auto align = [this](Tick t) {
        const Tick rem = t % pePeriod_;
        return rem == 0 ? t : t + (pePeriod_ - rem);
    };

    // Inter-chip link hop for outputs leaving a DIMM/rank node.
    auto link_cycles = [&](unsigned pe) -> Cycles {
        if (topology_.numLevels() > config_.base.channelNodeLevels &&
            topology_.heightOf(pe) ==
                topology_.numLevels() - 1 -
                    config_.base.channelNodeLevels) {
            return config_.base.interNodeLinkCycles;
        }
        return 0;
    };

    // Forward-declared so emissions can deliver upward recursively.
    std::function<void(unsigned, unsigned, std::size_t, Tick)> deliver;

    auto try_emit = [&](unsigned pe) {
        PeRun &state = pes[pe];
        const PeTrace &trace = run.trace[pe];
        bool progressed = true;
        while (progressed && state.emittedCount < trace.outputs.size()) {
            progressed = false;
            for (std::size_t k = 0; k < trace.outputs.size(); ++k) {
                if (state.emitted[k])
                    continue;
                const PeOutput &out = trace.outputs[k];

                // All provenance must have arrived.
                Tick ready = start;
                bool arrived = true;
                for (const Provenance &src : out.sources) {
                    const Tick t = state.arrival[src.side][src.index];
                    if (t == MaxTick) {
                        arrived = false;
                        break;
                    }
                    ready = std::max(ready, t);
                }
                if (!arrived)
                    continue;

                // A forward additionally needs the opposite side
                // complete — only then is "no match" certain.
                if (out.action == PeAction::Forward) {
                    bool blocked = false;
                    for (const Provenance &src : out.sources) {
                        const unsigned other = 1 - src.side;
                        if (state.arrived[other] <
                            state.expected[other]) {
                            blocked = true;
                            break;
                        }
                    }
                    if (blocked) {
                        if (!state.countedForwardWait[k]) {
                            state.countedForwardWait[k] = true;
                            ++timing.forwardWaits;
                        }
                        continue;
                    }
                }

                const Cycles path =
                    (out.action == PeAction::Reduce
                         ? config_.base.latency.reducePath()
                         : config_.base.latency.forwardPath()) +
                    config_.base.latency.merge + link_cycles(pe);
                Tick emit = align(ready) + path * pePeriod_;
                emit = std::max(emit, state.pipeFree);
                // The emit decision is made now (e.g., a forward that was
                // waiting for the opposite side to complete).
                emit = std::max(emit, eq.now());
                state.pipeFree =
                    emit + config_.base.latency.issue * pePeriod_;

                // Consume inputs; free FIFO slots at last use.
                for (const Provenance &src : out.sources) {
                    unsigned &uses =
                        state.remainingUses[src.side][src.index];
                    FAFNIR_ASSERT(uses > 0, "provenance double-free");
                    if (--uses == 0) {
                        --state.occupancy[src.side];
                        occupancy_changed(pe, -1, emit);
                    }
                }

                state.emitted[k] = true;
                state.emitTick[k] = emit;
                ++state.emittedCount;
                timing.linkPayloadBytes += vector_bytes;
                progressed = true;
                PeTelemetry &activity = peStats_[pe];
                ++activity.outputs;
                const bool is_reduce = out.action == PeAction::Reduce;
                if (is_reduce)
                    ++activity.reduces;
                else
                    ++activity.forwards;
                const Tick issue_ticks =
                    config_.base.latency.issue * pePeriod_;
                activity.busyTicks += issue_ticks;
                if (ts) {
                    // Tagged with the item's originating query ids and
                    // the causal flow of the arrival that unblocked it.
                    const auto qids = out.item.queryIds();
                    ts->completeEvent(
                        telemetry::kPidTree, static_cast<int>(pe), "pe",
                        is_reduce ? "reduce" : "forward", emit,
                        issue_ticks,
                        {{"queries",
                          static_cast<double>(qids.size())},
                         {"q0", qids.empty()
                                    ? -1.0
                                    : static_cast<double>(qids[0])},
                         {"flow",
                          static_cast<double>(eq.currentFlow())}});
                }
                if (config_.recordTimeline)
                    timing.timeline.push_back({emit, pe, "emit", k});

                if (pe == TreeTopology::rootPe()) {
                    root_times[k] = emit;
                } else {
                    const unsigned parent = topology_.parent(pe);
                    const unsigned side = pe % 2 == 0 ? 0 : 1;
                    // Position within the parent's input list: children
                    // outputs land in trace order.
                    eq.scheduleFn(emit, [&deliver, parent, side, k] {
                        deliver(parent, side, k, 0);
                    });
                }
            }
        }
    };

    deliver = [&](unsigned pe, unsigned side, std::size_t index,
                  Tick /*unused*/) {
        PeRun &state = pes[pe];
        FAFNIR_ASSERT(index < state.expected[side],
                      "delivery beyond expected inputs");
        Tick at = eq.now();
        ++state.occupancy[side];
        ++peStats_[pe].deliveries;
        occupancy_changed(pe, 1, at);
        if (state.occupancy[side] > config_.base.hwBatch) {
            ++timing.fifoOverflows;
            at += config_.overflowPenalty * pePeriod_;
        }
        // Injected backpressure (pe_backpressure hook): the arrival
        // stalls as if the FIFO had no free slot, mirroring the organic
        // overflow penalty above. Timing-only — values are untouched.
        if (fault::FaultPlan *p = fault::plan(); p != nullptr) {
            if (const Cycles extra = p->peBackpressureCycles();
                extra != 0) {
                ++timing.injectedBackpressure;
                at += extra * pePeriod_;
                if (ts) {
                    ts->instantEvent(telemetry::kPidTree,
                                     static_cast<int>(pe), "fault",
                                     "pe_backpressure", at,
                                     {{"cycles",
                                       static_cast<double>(extra)}});
                }
            }
        }
        FAFNIR_ASSERT(state.arrival[side][index] == MaxTick,
                      "duplicate delivery");
        state.arrival[side][index] = at;
        ++state.arrived[side];
        if (config_.recordTimeline) {
            timing.timeline.push_back(
                {at, pe, "deliver",
                 side * state.expected[0] + index});
        }
        try_emit(pe);
        // An arrival here may unblock forwards waiting in the parent
        // chain only via future emissions, which schedule events.
    };

    // --- Issue the DRAM reads; completions drive the pipeline. ----------
    // Each read starts a fresh causal flow: its completion one-shot and
    // everything that one-shot schedules (the whole delivery chain up
    // the tree) inherit the flow id through the event queue.
    std::vector<std::array<std::vector<LeafRead>, 2>> leaf_reads(
        num_pes + 1);
    timing.memFirst = MaxTick;
    timing.memLast = start;
    for (unsigned rank = 0; rank < topology_.numRanks(); ++rank) {
        const unsigned pe = topology_.leafPeOf(rank);
        const unsigned side = topology_.sideOf(rank);
        // Position of this rank's reads within the leaf input side: ranks
        // earlier in the same side contribute first (matches the
        // functional assembly order).
        std::size_t base = 0;
        for (unsigned r = 0; r < rank; ++r) {
            if (topology_.leafPeOf(r) == pe &&
                topology_.sideOf(r) == side) {
                base += prepared.rankReads[r].size();
            }
        }
        auto &side_reads = leaf_reads[pe][side];
        for (std::size_t i = 0; i < prepared.rankReads[rank].size();
             ++i) {
            const auto &read = prepared.rankReads[rank][i];
            const std::uint64_t flow = eq.beginFlow();
            const auto result = memory_.readAsync(
                read.address, vector_bytes, start,
                dram::Destination::Ndp,
                [&deliver, pe, side, pos = base + i](
                    Tick, const dram::AccessResult &) {
                    deliver(pe, side, pos, 0);
                });
            const std::size_t pos = base + i;
            if (side_reads.size() <= pos)
                side_reads.resize(pos + 1);
            side_reads[pos] =
                LeafRead{rank, result.firstData, result.complete, flow};
            timing.memFirst = std::min(timing.memFirst, result.firstData);
            timing.memLast = std::max(timing.memLast, result.complete);
        }
    }
    eq.setCurrentFlow(0);
    if (timing.memFirst == MaxTick)
        timing.memFirst = start;

    eq.run();

    for (unsigned pe = 1; pe <= num_pes; ++pe) {
        FAFNIR_ASSERT(pes[pe].emittedCount ==
                          run.trace[pe].outputs.size(),
                      "PE ", pe, " stalled: ", pes[pe].emittedCount, "/",
                      run.trace[pe].outputs.size(), " outputs emitted");
    }

    // --- Per-query completion and root-link serialization. --------------
    const std::size_t num_queries = prepared.querySets.size();
    std::vector<std::pair<Tick, QueryId>> finish_order;
    finish_order.reserve(num_queries);
    std::vector<Tick> query_ready(num_queries, start);
    for (QueryId q = 0; q < num_queries; ++q) {
        Tick tq = start;
        for (std::size_t k = 0; k < run.rootOutputs.size(); ++k) {
            if (run.rootOutputs[k].item.findQuery(q)) {
                FAFNIR_ASSERT(root_times[k] != MaxTick,
                              "root output never emitted");
                tq = std::max(tq, root_times[k]);
            }
        }
        tq += (run.rootItemsPerQuery[q] - 1) *
              config_.base.latency.reduceValue * pePeriod_;
        query_ready[q] = tq;
        finish_order.emplace_back(tq, q);
    }
    std::sort(finish_order.begin(), finish_order.end());

    const auto transfer_ticks = static_cast<Tick>(
        static_cast<double>(vector_bytes) / config_.base.rootLinkGBs *
        1000.0);
    Tick link_free = 0;
    timing.queryComplete.assign(num_queries, 0);
    std::vector<Tick> link_start(num_queries, 0);
    for (const auto &[ready, q] : finish_order) {
        link_start[q] = std::max(ready, link_free);
        const Tick done = link_start[q] + transfer_ticks;
        timing.queryComplete[q] =
            done + config_.base.hostReceiveOverhead;
        link_free = done;
    }
    timing.complete = link_free + config_.base.hostReceiveOverhead;

    // --- Causal attribution: walk each query's critical path. -----------
    //
    // The path runs backwards from the query's last root output through
    // the maximum-arrival ("binding") source at every PE down to a leaf
    // input, i.e. to one DRAM read. Each hop's interval [previous stage
    // end, emission] splits exactly into pipeline compute and waiting,
    // so the recorded components sum to the end-to-end latency by
    // construction (pinned by tests/test_attribution.cc).
    if (attr || ts || telemetry::flightRecorder() != nullptr) {
        if (ts) {
            ts->setThreadName(telemetry::kPidService,
                              kServiceDeliveryTid, "delivery");
        }
        const PeLatency &lat = config_.base.latency;
        struct Hop
        {
            unsigned pe;
            std::size_t out;
        };
        std::vector<Hop> path;
        for (QueryId q = 0; q < num_queries; ++q) {
            // Root output of q that bounds its tree time.
            std::size_t k_last = run.rootOutputs.size();
            Tick t_last = 0;
            for (std::size_t k = 0; k < run.rootOutputs.size(); ++k) {
                if (run.rootOutputs[k].item.findQuery(q) &&
                    (k_last == run.rootOutputs.size() ||
                     root_times[k] > t_last)) {
                    k_last = k;
                    t_last = root_times[k];
                }
            }
            if (k_last == run.rootOutputs.size())
                continue; // nothing reached the root for this query

            // Back-walk to the leaf, following binding arrivals.
            path.clear();
            unsigned pe = TreeTopology::rootPe();
            std::size_t k = k_last;
            unsigned leaf_side = 0;
            std::size_t leaf_index = 0;
            while (true) {
                path.push_back({pe, k});
                const PeOutput &out = run.trace[pe].outputs[k];
                const Provenance *bind = nullptr;
                Tick best = 0;
                for (const Provenance &src : out.sources) {
                    const Tick t = pes[pe].arrival[src.side][src.index];
                    if (bind == nullptr || t > best) {
                        bind = &src;
                        best = t;
                    }
                }
                FAFNIR_ASSERT(bind != nullptr, "output without sources");
                if (topology_.heightOf(pe) == 0) {
                    leaf_side = bind->side;
                    leaf_index = bind->index;
                    break;
                }
                pe = 2 * pe + bind->side;
                k = bind->index;
            }
            const unsigned leaf_pe = path.back().pe;
            const LeafRead &lr =
                leaf_reads[leaf_pe][leaf_side][leaf_index];

            // Memory interval: isolated service vs. contention.
            const Tick mem_interval = lr.complete - start;
            const Tick dram_service = std::min(
                mem_interval, memory_.closedRowReadLatency());
            const Tick ctrl_queue = mem_interval - dram_service;

            // PE hops, leaf to root.
            Tick pe_compute = 0;
            Tick forward_wait = 0;
            Tick prev = lr.complete;
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
                const PeOutput &out = run.trace[it->pe].outputs[it->out];
                const Cycles cycles =
                    (out.action == PeAction::Reduce ? lat.reducePath()
                                                    : lat.forwardPath()) +
                    lat.merge + link_cycles(it->pe);
                const Tick compute = cycles * pePeriod_;
                const Tick emit = pes[it->pe].emitTick[it->out];
                pe_compute += compute;
                forward_wait += emit - prev - compute;
                prev = emit;
            }
            // Serial root combines of this query count as compute.
            pe_compute += query_ready[q] - t_last;

            telemetry::QueryAttribution qa;
            qa.batch = batch_ordinal;
            qa.query = q;
            qa.issued = start;
            qa.complete = timing.queryComplete[q];
            qa.dramService = dram_service;
            qa.ctrlQueue = ctrl_queue;
            qa.peCompute = pe_compute;
            qa.forwardWait = forward_wait;
            qa.serviceQueue = timing.queryComplete[q] - query_ready[q];
            qa.criticalRank = lr.rank;
            qa.hops = static_cast<unsigned>(path.size());
            qa.flow = lr.flow;
            if (attr)
                attr->recordQuery(qa);

            if (ts) {
                // Perfetto arrows along the critical path: DRAM read
                // span → each PE emission span → the delivery span.
                const std::uint64_t fid = ts->newFlowId();
                const std::string label = "q" + std::to_string(q);
                ts->flowBegin(fid, telemetry::kPidDram,
                              static_cast<int>(lr.rank), "attrib.flow",
                              label, lr.firstData);
                for (auto it = path.rbegin(); it != path.rend(); ++it) {
                    ts->flowStep(fid, telemetry::kPidTree,
                                 static_cast<int>(it->pe), "attrib.flow",
                                 label, pes[it->pe].emitTick[it->out]);
                }
                ts->completeEvent(
                    telemetry::kPidService, kServiceDeliveryTid,
                    "service.delivery", label, link_start[q],
                    timing.queryComplete[q] - link_start[q],
                    {{"flow", static_cast<double>(lr.flow)}});
                ts->flowEnd(fid, telemetry::kPidService,
                            kServiceDeliveryTid, "attrib.flow", label,
                            link_start[q]);
            }
        }

        // Meeting-level histogram: one pairwise merge per reduce
        // emission at that PE's height; the root's serial combines
        // merge at the root level.
        if (attr) {
            for (unsigned p = 1; p <= num_pes; ++p) {
                std::uint64_t reduces = 0;
                for (const auto &out : run.trace[p].outputs)
                    reduces += out.action == PeAction::Reduce;
                attr->recordMeeting(topology_.heightOf(p), reduces);
            }
            attr->recordMeeting(topology_.numLevels() - 1,
                                run.rootCombines);
        }
        // Per-PE meeting summary (bounded per batch, off the try_emit
        // hot path): code = PE id; a = tree height, b = reduce count.
        if (auto *rec = telemetry::flightRecorder()) {
            for (unsigned p = 1; p <= num_pes; ++p) {
                std::uint64_t reduces = 0;
                for (const auto &out : run.trace[p].outputs)
                    reduces += out.action == PeAction::Reduce;
                if (reduces > 0)
                    rec->record(telemetry::Stage::PeMeeting,
                                timing.complete, p,
                                topology_.heightOf(p), reduces);
            }
        }
    }
    activeTicks_ += timing.complete - start;
    if (config_.computeValues)
        timing.results = std::move(run.results);

    if (config_.recordTimeline) {
        std::sort(timing.timeline.begin(), timing.timeline.end(),
                  [](const TimelineEvent &a, const TimelineEvent &b) {
                      return a.tick < b.tick;
                  });
    }
    return timing;
}

void
writeTimeline(std::ostream &os,
              const std::vector<TimelineEvent> &timeline)
{
    os << "tick\tpe\tkind\tindex\n";
    for (const auto &event : timeline) {
        os << event.tick << '\t' << event.pe << '\t' << event.kind
           << '\t' << event.index << '\n';
    }
}

} // namespace fafnir::core
