/**
 * @file
 * Queued memory controller with scheduling policies.
 *
 * The MemorySystem is a resource-reservation calculator that serves
 * requests in call order; this controller adds the missing front-end: a
 * per-rank request queue drained by a scheduling policy. FCFS issues in
 * arrival order; FR-FCFS prefers requests that hit a currently open row
 * (the standard open-page scheduler), with an age cap so reordering can
 * never starve an old request. Completions are delivered through the
 * event queue.
 *
 * Fafnir's root plays exactly this role for the unique-index read lists
 * the host compiles ("the root receives the requests ... decodes them,
 * and forwards them to corresponding ranks"), and the CPU baseline's
 * memory controller is the same machine with a different client.
 */

#ifndef FAFNIR_DRAM_CONTROLLER_HH
#define FAFNIR_DRAM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "dram/memsystem.hh"
#include "sim/eventq.hh"

namespace fafnir::dram
{

/** Queue-drain policy. */
enum class SchedulingPolicy
{
    Fcfs,
    FrFcfs,
};

/** The queued controller front-end. */
class Controller
{
  public:
    using Callback = std::function<void(Tick, const AccessResult &)>;

    /**
     * @param memory backing timing model (shared with other clients).
     * @param policy queue-drain policy.
     * @param age_cap_ticks FR-FCFS may bypass a request for at most this
     *        long before age wins (0 = strict row-hit-first).
     */
    Controller(MemorySystem &memory, SchedulingPolicy policy,
               Tick age_cap_ticks = 500 * kTicksPerNs);

    /**
     * Enqueue a read of @p bytes at @p addr, arriving at @p when.
     * @p on_complete fires from the event queue at data delivery.
     */
    void enqueue(Addr addr, unsigned bytes, Tick when, Destination dest,
                 Callback on_complete);

    /** Requests still queued or in flight. */
    std::size_t pending() const { return pending_; }

    SchedulingPolicy policy() const { return policy_; }

    /** @{ Statistics. */
    std::uint64_t issuedCount() const { return issued_.value(); }
    std::uint64_t reorderedCount() const { return reordered_.value(); }
    std::uint64_t stalledCount() const { return stalled_.value(); }
    void registerStats(StatGroup &group) const;
    /** @} */

  private:
    struct Request
    {
        Addr addr = 0;
        unsigned bytes = 0;
        Destination dest = Destination::Ndp;
        Tick arrival = 0;
        std::uint64_t sequence = 0;
        /** Causal flow tag captured from the event queue at enqueue. */
        std::uint64_t flow = 0;
        Callback onComplete;
    };

    struct RankQueue
    {
        std::deque<Request> requests;
        /** A drain pass is scheduled or running. */
        bool draining = false;
        /** Earliest tick the next issue may happen (command pipelining). */
        Tick nextIssue = 0;
    };

    /** Pick and issue requests for @p rank until its queue drains. */
    void drain(unsigned rank);

    /** Index of the request to issue next under the policy. */
    std::size_t pickNext(const RankQueue &queue, unsigned rank,
                         Tick now) const;

    MemorySystem &memory_;
    SchedulingPolicy policy_;
    Tick ageCap_;
    std::vector<RankQueue> queues_;
    std::uint64_t sequence_ = 0;
    std::size_t pending_ = 0;

    Counter issued_;
    Counter reordered_;
    Counter stalled_;
};

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_CONTROLLER_HH
