/**
 * @file
 * Implementation of the DDR4 timing model.
 */

#include "memsystem.hh"

#include <algorithm>

#include "common/faultinject.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::dram
{

MemorySystem::MemorySystem(EventQueue &eq, const Geometry &geometry,
                           const Timing &timing, Interleave interleave,
                           unsigned block_bytes)
    : eventq_(eq), timing_(timing),
      mapper_(geometry, interleave, block_bytes)
{
    ranks_.resize(geometry.totalRanks());
    for (auto &rank : ranks_)
        rank.banks.resize(geometry.banksPerRank);
    channels_.resize(geometry.channels);
    rankBursts_.resize(geometry.totalRanks());
}

void
MemorySystem::reset()
{
    for (auto &rank : ranks_) {
        for (auto &bank : rank.banks)
            bank = BankState{};
        rank.actWindow.clear();
        rank.nextAct = 0;
        rank.busFreeAt = 0;
        rank.nextRefresh = 0;
        rank.lastCasGroup = -1;
        rank.lastCasAt = 0;
    }
    refreshStalls_.reset();
    rankBusBusy_.reset();
    channelBusBusy_.reset();
    for (auto &channel : channels_)
        channel = ChannelState{};
    reads_.reset();
    writes_.reset();
    bursts_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    activations_.reset();
    bytesToHost_.reset();
    bytesToNdp_.reset();
    for (auto &counter : rankBursts_)
        counter.reset();
    readLatencyNs_.reset();
}

MemorySystem::RankState &
MemorySystem::rankState(const Coordinates &coords)
{
    return ranks_[coords.globalRank(mapper_.geometry())];
}

Tick
MemorySystem::refreshAdjust(RankState &rank, Tick t)
{
    if (timing_.tREFI == 0)
        return t;
    if (rank.nextRefresh == 0)
        rank.nextRefresh = timing_.tREFI;
    // Catch up on windows that passed, then step out of a live one.
    while (t >= rank.nextRefresh) {
        const Tick window_end = rank.nextRefresh + timing_.tRFC;
        if (t < window_end) {
            t = window_end;
            ++refreshStalls_;
        }
        rank.nextRefresh += timing_.tREFI;
    }
    return t;
}

Tick
MemorySystem::accessBurst(const Coordinates &coords, Tick earliest,
                          Destination dest, AccessResult &result)
{
    RankState &rank = rankState(coords);
    earliest = refreshAdjust(rank, earliest);
    BankState &bank = rank.banks[coords.bank];
    ChannelState &channel = channels_[coords.channel];
    const auto row = static_cast<std::int64_t>(coords.row);

    // Bank-group pacing: back-to-back CAS commands in the same group
    // space at tCCD_L, across groups at tCCD_S.
    const int group = static_cast<int>(
        coords.bank % mapper_.geometry().bankGroups);
    Tick group_ready = earliest;
    if (rank.lastCasGroup >= 0) {
        group_ready = rank.lastCasAt + (group == rank.lastCasGroup
                                            ? timing_.tCCD
                                            : timing_.tCCDS);
    }

    Tick cas; // effective column-command issue time
    if (bank.openRow == row) {
        ++result.rowHits;
        ++rowHits_;
        cas = std::max(earliest, bank.nextCas);
    } else {
        ++result.rowMisses;
        ++rowMisses_;
        const unsigned global_rank =
            coords.globalRank(mapper_.geometry());
        Tick act_ready = earliest;
        if (bank.openRow >= 0) {
            const Tick pre = std::max(earliest, bank.nextPre);
            act_ready = pre + timing_.tRP;
            if (commandLog_) {
                commandLog_->record(
                    pre, global_rank, coords.bank,
                    static_cast<std::uint64_t>(bank.openRow),
                    DramCommand::Pre);
            }
        }
        // tRRD and tFAW activation constraints within the rank.
        Tick act = std::max({act_ready, rank.nextAct, bank.nextAct});
        if (rank.actWindow.size() >= 4)
            act = std::max(act, rank.actWindow.front() + timing_.tFAW);
        if (commandLog_) {
            commandLog_->record(act, global_rank, coords.bank, coords.row,
                                DramCommand::Act);
        }

        rank.actWindow.push_back(act);
        while (rank.actWindow.size() > 4)
            rank.actWindow.pop_front();
        rank.nextAct = act + timing_.tRRD;
        bank.nextAct = act + timing_.tRC();
        bank.openRow = row;
        bank.nextPre = act + timing_.tRAS;
        bank.nextCas = act + timing_.tRCD;
        ++activations_;

        cas = bank.nextCas;
    }

    cas = std::max(cas, group_ready);

    // The data beats must find both the rank-internal bus and, for host
    // deliveries, the channel bus free. Delay the effective CAS until the
    // data window is available.
    Tick data_start = cas + timing_.tCL;
    data_start = std::max(data_start, rank.busFreeAt);
    if (dest == Destination::Host)
        data_start = std::max(data_start, channel.busFreeAt);

    const Tick complete = data_start + timing_.tBurst;
    rank.busFreeAt = complete;
    rankBusBusy_ += timing_.tBurst;
    if (dest == Destination::Host) {
        channel.busFreeAt = complete + timing_.tRTR;
        channelBusBusy_ += timing_.tBurst;
    }

    const Tick eff_cas = data_start - timing_.tCL;
    bank.nextCas = std::max(bank.nextCas, eff_cas + timing_.tCCD);
    bank.nextPre = std::max(bank.nextPre, eff_cas + timing_.tRTP);
    rank.lastCasGroup = group;
    rank.lastCasAt = eff_cas;
    if (commandLog_) {
        commandLog_->record(eff_cas,
                            coords.globalRank(mapper_.geometry()),
                            coords.bank, coords.row, DramCommand::Read);
    }

    if (result.bursts == 0)
        result.firstData = data_start;
    ++result.bursts;
    ++bursts_;
    ++rankBursts_[coords.globalRank(mapper_.geometry())];
    return complete;
}

namespace
{

/** One span per read request on the owning rank's trace track. */
void
traceRead(const Coordinates &coords, const Geometry &geometry,
          unsigned bytes, Tick earliest, const AccessResult &result,
          std::uint64_t flow)
{
    auto *ts = telemetry::sink();
    if (ts == nullptr)
        return;
    const unsigned rank = coords.globalRank(geometry);
    ts->setThreadName(telemetry::kPidDram, static_cast<int>(rank),
                      "rank " + std::to_string(rank));
    ts->completeEvent(telemetry::kPidDram, static_cast<int>(rank),
                      "dram.read", "rd", earliest,
                      result.complete - earliest,
                      {{"bytes", static_cast<double>(bytes)},
                       {"rowHits", static_cast<double>(result.rowHits)},
                       {"rowMisses",
                        static_cast<double>(result.rowMisses)},
                       {"flow", static_cast<double>(flow)}});
}

/**
 * Transient command stall before issuing a read (dram_stall hook).
 * @return the possibly-delayed issue time.
 */
Tick
injectCommandStall(Tick earliest)
{
    fault::FaultPlan *p = fault::plan();
    if (p == nullptr)
        return earliest;
    const Tick stall = p->dramStallTicks();
    if (stall == 0)
        return earliest;
    if (auto *ts = telemetry::sink()) {
        ts->instantEvent(telemetry::kPidDram, 0, "fault", "dram_stall",
                         earliest,
                         {{"stallNs",
                           static_cast<double>(stall) / kTicksPerNs}});
    }
    return earliest + stall;
}

/**
 * Late data delivery on a completed read (dram_latency hook): the bus
 * reservations already made stand; only the consumer sees the data
 * arrive late, modelling ECC retries or thermal throttling on the DIMM.
 * @return the possibly-extended completion time.
 */
Tick
injectReadLatency(Tick earliest, Tick complete)
{
    fault::FaultPlan *p = fault::plan();
    if (p == nullptr)
        return complete;
    const Tick extra = p->dramLatencyExtra(complete - earliest);
    if (extra == 0)
        return complete;
    if (auto *ts = telemetry::sink()) {
        ts->instantEvent(telemetry::kPidDram, 0, "fault", "dram_latency",
                         complete + extra,
                         {{"extraNs",
                           static_cast<double>(extra) / kTicksPerNs}});
    }
    return complete + extra;
}

} // namespace

AccessResult
MemorySystem::read(Addr addr, unsigned bytes, Tick earliest,
                   Destination dest)
{
    FAFNIR_ASSERT(bytes > 0, "zero-length read");
    earliest = injectCommandStall(earliest);
    const Geometry &g = mapper_.geometry();

    AccessResult result;
    ++reads_;
    Tick complete = earliest;
    const Addr first = addr & ~Addr(g.burstBytes - 1);
    const Addr last = (addr + bytes - 1) & ~Addr(g.burstBytes - 1);
    for (Addr a = first; a <= last; a += g.burstBytes) {
        const Coordinates coords = mapper_.decode(a);
        complete = std::max(complete,
                            accessBurst(coords, earliest, dest, result));
    }
    result.complete = injectReadLatency(earliest, complete);

    if (dest == Destination::Host)
        bytesToHost_ += bytes;
    else
        bytesToNdp_ += bytes;
    readLatencyNs_.sample(
        static_cast<double>(result.complete - earliest) / kTicksPerNs);
    traceRead(mapper_.decode(first), g, bytes, earliest, result,
              eventq_.currentFlow());
    // code = rank of the first burst; a = bytes, b = service ticks.
    if (auto *rec = telemetry::flightRecorder()) {
        rec->record(telemetry::Stage::DramService, result.complete,
                    mapper_.decode(first).rank, bytes,
                    result.complete - earliest);
    }
    return result;
}

AccessResult
MemorySystem::readAsync(
    Addr addr, unsigned bytes, Tick earliest, Destination dest,
    std::function<void(Tick, const AccessResult &)> on_complete)
{
    AccessResult result = read(addr, bytes, earliest, dest);
    eventq_.scheduleFn(result.complete,
                       [result, cb = std::move(on_complete)] {
                           cb(result.complete, result);
                       },
                       Event::DramPriority);
    return result;
}

AccessResult
MemorySystem::readAt(const Coordinates &coords, unsigned bytes,
                     Tick earliest, Destination dest)
{
    FAFNIR_ASSERT(bytes > 0, "zero-length read");
    earliest = injectCommandStall(earliest);
    const Geometry &g = mapper_.geometry();

    AccessResult result;
    ++reads_;
    Tick complete = earliest;
    Coordinates c = coords;
    c.column &= ~(g.burstBytes - 1);
    const unsigned bursts = static_cast<unsigned>(
        divCeil(bytes + coords.column % g.burstBytes, g.burstBytes));
    for (unsigned i = 0; i < bursts; ++i) {
        complete = std::max(complete,
                            accessBurst(c, earliest, dest, result));
        c.column += g.burstBytes;
        if (c.column >= g.rowBytes) {
            c.column = 0;
            ++c.row;
            FAFNIR_ASSERT(c.row < g.rowsPerBank, "readAt ran off the bank");
        }
    }
    result.complete = injectReadLatency(earliest, complete);
    if (dest == Destination::Host)
        bytesToHost_ += bytes;
    else
        bytesToNdp_ += bytes;
    readLatencyNs_.sample(
        static_cast<double>(result.complete - earliest) / kTicksPerNs);
    traceRead(coords, g, bytes, earliest, result,
              eventq_.currentFlow());
    return result;
}

double
MemorySystem::rankBusUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(rankBusBusy_.value()) /
           (static_cast<double>(elapsed) *
            mapper_.geometry().totalRanks());
}

double
MemorySystem::channelBusUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(channelBusBusy_.value()) /
           (static_cast<double>(elapsed) * mapper_.geometry().channels);
}

Tick
MemorySystem::streamFromRank(unsigned rank, std::uint64_t bytes,
                             Tick earliest, Destination dest)
{
    FAFNIR_ASSERT(rank < ranks_.size(), "bad rank ", rank);
    if (bytes == 0)
        return earliest;
    const Geometry &g = mapper_.geometry();
    RankState &state = ranks_[rank];

    const std::uint64_t bursts = divCeil(bytes, g.burstBytes);
    // First data needs one closed-row access; the rest streams at the
    // data-bus rate with activations hidden by bank interleaving.
    const Tick start_at =
        refreshAdjust(state, std::max(earliest, state.busFreeAt));
    const Tick first = start_at + timing_.tRCD + timing_.tCL;
    const Tick complete = first + bursts * timing_.tBurst;
    state.busFreeAt = complete;
    bursts_ += bursts;
    rankBusBusy_ += bursts * timing_.tBurst;
    activations_ += divCeil(bytes, g.rowBytes);
    rowHits_ += bursts - std::min(bursts, divCeil(bytes, g.rowBytes));
    rowMisses_ += divCeil(bytes, g.rowBytes);
    ++reads_;
    if (dest == Destination::Host) {
        ChannelState &channel = channels_[rankChannel(rank)];
        channel.busFreeAt = std::max(channel.busFreeAt, complete);
        channelBusBusy_ += bursts * timing_.tBurst;
        bytesToHost_ += bytes;
    } else {
        bytesToNdp_ += bytes;
    }
    rankBursts_[rank] += bursts;
    if (auto *ts = telemetry::sink()) {
        ts->setThreadName(telemetry::kPidDram, static_cast<int>(rank),
                          "rank " + std::to_string(rank));
        ts->completeEvent(telemetry::kPidDram, static_cast<int>(rank),
                          "dram.stream", "stream", start_at,
                          complete - start_at,
                          {{"bytes", static_cast<double>(bytes)}});
    }
    return complete;
}

Tick
MemorySystem::streamToRank(unsigned rank, std::uint64_t bytes,
                           Tick earliest)
{
    FAFNIR_ASSERT(rank < ranks_.size(), "bad rank ", rank);
    if (bytes == 0)
        return earliest;
    const Geometry &g = mapper_.geometry();
    RankState &state = ranks_[rank];
    const std::uint64_t bursts = divCeil(bytes, g.burstBytes);
    const Tick first = std::max(earliest, state.busFreeAt) + timing_.tRCD;
    const Tick complete = first + bursts * timing_.tBurst;
    state.busFreeAt = complete;
    bursts_ += bursts;
    rankBusBusy_ += bursts * timing_.tBurst;
    rankBursts_[rank] += bursts;
    ++writes_;
    bytesToNdp_ += bytes;
    return complete;
}

unsigned
MemorySystem::rankChannel(unsigned rank) const
{
    return rank / mapper_.geometry().ranksPerChannel();
}

std::int64_t
MemorySystem::openRow(unsigned rank, unsigned bank) const
{
    FAFNIR_ASSERT(rank < ranks_.size(), "bad rank ", rank);
    FAFNIR_ASSERT(bank < ranks_[rank].banks.size(), "bad bank ", bank);
    return ranks_[rank].banks[bank].openRow;
}

Tick
MemorySystem::transferToHost(unsigned channel, unsigned bytes,
                             Tick earliest)
{
    FAFNIR_ASSERT(channel < channels_.size(), "bad channel ", channel);
    FAFNIR_ASSERT(bytes > 0, "empty transfer");
    ChannelState &state = channels_[channel];
    const Geometry &g = mapper_.geometry();
    const Tick duration =
        divCeil(bytes, g.burstBytes) * timing_.tBurst;
    const Tick start = std::max(earliest, state.busFreeAt);
    state.busFreeAt = start + duration + timing_.tRTR;
    channelBusBusy_ += duration;
    bytesToHost_ += bytes;
    return start + duration;
}

AccessResult
MemorySystem::write(Addr addr, unsigned bytes, Tick earliest,
                    Destination source)
{
    AccessResult result = read(addr, bytes, earliest, source);
    // Re-attribute the access from the read counters to writes; timing of
    // the two directions is symmetric at this model's fidelity.
    ++writes_;
    return result;
}

void
MemorySystem::registerStats(StatGroup &group) const
{
    group.addCounter("reads", reads_, "read requests");
    group.addCounter("writes", writes_, "write requests");
    group.addCounter("bursts", bursts_, "64B bursts transferred");
    group.addCounter("rowHits", rowHits_, "row-buffer hits");
    group.addCounter("rowMisses", rowMisses_, "row-buffer misses");
    group.addCounter("activations", activations_, "row activations");
    group.addCounter("bytesToHost", bytesToHost_,
                     "bytes crossing the channel bus to the host");
    group.addCounter("bytesToNdp", bytesToNdp_,
                     "bytes consumed inside DIMMs by NDP units");
    group.addCounter("refreshStalls", refreshStalls_,
                     "accesses delayed by a refresh window");
    group.addDistribution("readLatencyNs", readLatencyNs_,
                          "per-request read latency (ns)");
    for (std::size_t rank = 0; rank < rankBursts_.size(); ++rank) {
        group.addCounter("rank" + std::to_string(rank) + ".bursts",
                         rankBursts_[rank],
                         "bursts served by rank " + std::to_string(rank));
    }
}

} // namespace fafnir::dram
