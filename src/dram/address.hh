/**
 * @file
 * Physical address decomposition.
 *
 * Decodes a flat physical address into (channel, dimm, rank, bank, row,
 * column) under a configurable interleaving policy. The policy matters a
 * great deal to this paper: Fafnir/RecNMP map whole 512 B embedding
 * vectors to individual ranks (rank bits above the vector offset, the
 * "bits [9-13]" mapping of Figure 4b), whereas TensorDIMM stripes every
 * vector across all ranks.
 */

#ifndef FAFNIR_DRAM_ADDRESS_HH
#define FAFNIR_DRAM_ADDRESS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "dram/config.hh"

namespace fafnir::dram
{

/** Fully decoded DRAM coordinates of a burst. */
struct Coordinates
{
    unsigned channel = 0;
    unsigned dimm = 0;     ///< within the channel
    unsigned rank = 0;     ///< within the DIMM
    unsigned bank = 0;
    std::uint64_t row = 0;
    unsigned column = 0;   ///< burst-aligned column offset within the row

    /** Flat rank id across the whole system. */
    unsigned
    globalRank(const Geometry &g) const
    {
        return (channel * g.dimmsPerChannel + dimm) * g.ranksPerDimm + rank;
    }

    /** Flat DIMM id across the whole system. */
    unsigned
    globalDimm(const Geometry &g) const
    {
        return channel * g.dimmsPerChannel + dimm;
    }

    bool
    operator==(const Coordinates &other) const = default;
};

/** Interleaving policy. */
enum class Interleave
{
    /**
     * Rank bits directly above a block offset: consecutive aligned blocks
     * (default 512 B, one embedding vector) land on consecutive ranks, and
     * the row bits sit above the rank bits. This is the paper's Figure 4b
     * layout for Fafnir and RecNMP.
     */
    BlockRank,
    /**
     * Cache-line (64 B) interleave across channels then ranks — a typical
     * CPU baseline mapping.
     */
    LineChannel,
};

/**
 * Address decoder for one Geometry and policy.
 */
class AddressMapper
{
  public:
    AddressMapper(const Geometry &geometry, Interleave policy,
                  unsigned block_bytes = 512);

    /** Decode a physical address. Faults on out-of-range addresses. */
    Coordinates decode(Addr addr) const;

    /**
     * Compose an address from coordinates (inverse of decode for
     * burst-aligned addresses).
     */
    Addr encode(const Coordinates &coords) const;

    const Geometry &geometry() const { return geometry_; }
    Interleave policy() const { return policy_; }
    unsigned blockBytes() const { return blockBytes_; }

    /** First bit of the global-rank field (the paper's bit 9 for 512 B). */
    unsigned rankShift() const;

  private:
    Geometry geometry_;
    Interleave policy_;
    unsigned blockBytes_;
};

/** Human-readable coordinates, for debugging and test failure messages. */
std::string toString(const Coordinates &coords);

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_ADDRESS_HH
