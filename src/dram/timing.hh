/**
 * @file
 * DDR4 timing parameters.
 *
 * All values are stored in ticks (picoseconds). The presets follow JEDEC
 * DDR4 speed grades; DDR4-2400 (CL17) is the default used throughout the
 * evaluation, matching the DDR4 system the paper targets.
 */

#ifndef FAFNIR_DRAM_TIMING_HH
#define FAFNIR_DRAM_TIMING_HH

#include "common/types.hh"

namespace fafnir::dram
{

/** JEDEC-style timing set for one speed grade. */
struct Timing
{
    /** Command/address clock period. */
    Tick tCK;
    /** ACT to internal read/write (RAS-to-CAS delay). */
    Tick tRCD;
    /** Read CAS latency. */
    Tick tCL;
    /** Precharge period. */
    Tick tRP;
    /** ACT to PRE minimum. */
    Tick tRAS;
    /** Data-bus occupancy of one BL8 burst (4 clocks, DDR). */
    Tick tBurst;
    /** Column-to-column delay, same bank group (tCCD_L). */
    Tick tCCD;
    /** Column-to-column delay, different bank groups (tCCD_S). */
    Tick tCCDS;
    /** ACT-to-ACT delay, same rank. */
    Tick tRRD;
    /** Four-activate window, same rank. */
    Tick tFAW;
    /** Read-to-precharge. */
    Tick tRTP;
    /** Rank-to-rank data-bus turnaround. */
    Tick tRTR;
    /** Average refresh interval (0 disables refresh). */
    Tick tREFI = 0;
    /** Refresh cycle time (rank blocked). */
    Tick tRFC = 0;

    /** ACT-to-ACT to the same bank (row cycle). */
    Tick tRC() const { return tRAS + tRP; }

    /** DDR4-2400 CL17 (1.2 GHz command clock, 2400 MT/s). */
    static Timing
    ddr4_2400()
    {
        Timing t{};
        t.tCK = 833;                 // 0.833 ns
        t.tRCD = 17 * t.tCK;         // 14.16 ns
        t.tCL = 17 * t.tCK;
        t.tRP = 17 * t.tCK;
        t.tRAS = 39 * t.tCK;         // 32 ns
        t.tBurst = 4 * t.tCK;        // BL8, double data rate
        t.tCCD = 6 * t.tCK;          // tCCD_L
        t.tCCDS = 4 * t.tCK;         // tCCD_S
        t.tRRD = 6 * t.tCK;          // tRRD_L
        t.tFAW = 26 * t.tCK;         // ~21 ns
        t.tRTP = 9 * t.tCK;
        t.tRTR = 2 * t.tCK;
        t.tREFI = 7800 * kTicksPerNs; // 7.8 us
        t.tRFC = 350 * kTicksPerNs;   // 8 Gb device class
        return t;
    }

    /** DDR4-3200 CL22. */
    static Timing
    ddr4_3200()
    {
        Timing t{};
        t.tCK = 625;
        t.tRCD = 22 * t.tCK;
        t.tCL = 22 * t.tCK;
        t.tRP = 22 * t.tCK;
        t.tRAS = 52 * t.tCK;
        t.tBurst = 4 * t.tCK;
        t.tCCD = 8 * t.tCK;
        t.tCCDS = 4 * t.tCK;
        t.tRRD = 8 * t.tCK;
        t.tFAW = 34 * t.tCK;
        t.tRTP = 12 * t.tCK;
        t.tRTR = 2 * t.tCK;
        t.tREFI = 7800 * kTicksPerNs;
        t.tRFC = 350 * kTicksPerNs;
        return t;
    }

    /**
     * HBM2 pseudo-channel timing (2 Gb/s pins, 64-bit pseudo-channel,
     * BL4 -> 32 B bursts). Used for the paper's Section VIII future-work
     * integration: leaf PEs attached to 32 pseudo channels.
     */
    static Timing
    hbm2()
    {
        Timing t{};
        t.tCK = 1000;                // 1 ns
        t.tRCD = 14 * t.tCK;
        t.tCL = 14 * t.tCK;
        t.tRP = 14 * t.tCK;
        t.tRAS = 33 * t.tCK;
        t.tBurst = 2 * t.tCK;        // BL4, double data rate
        t.tCCD = 2 * t.tCK;
        t.tCCDS = 2 * t.tCK;
        t.tRRD = 4 * t.tCK;
        t.tFAW = 16 * t.tCK;
        t.tRTP = 6 * t.tCK;
        t.tRTR = 1 * t.tCK;
        t.tREFI = 3900 * kTicksPerNs; // per-pseudo-channel refresh
        t.tRFC = 260 * kTicksPerNs;
        return t;
    }

    /** Idealized zero-latency memory for functional tests. */
    static Timing
    ideal()
    {
        Timing t{};
        t.tCK = 1;
        t.tBurst = 1;
        t.tRTR = 0;
        t.tRCD = t.tCL = t.tRP = t.tRAS = 0;
        t.tCCD = t.tCCDS = t.tRRD = t.tFAW = t.tRTP = 0;
        return t;
    }
};

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_TIMING_HH
