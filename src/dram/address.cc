/**
 * @file
 * Implementation of the address decoder.
 */

#include "address.hh"

#include <sstream>

namespace fafnir::dram
{

AddressMapper::AddressMapper(const Geometry &geometry, Interleave policy,
                             unsigned block_bytes)
    : geometry_(geometry), policy_(policy), blockBytes_(block_bytes)
{
    geometry_.check();
    FAFNIR_ASSERT(isPowerOf2(blockBytes_), "block size must be power of 2");
    FAFNIR_ASSERT(blockBytes_ >= geometry_.burstBytes,
                  "block smaller than a burst");
    FAFNIR_ASSERT(blockBytes_ <= geometry_.rowBytes,
                  "block larger than a row");
    FAFNIR_ASSERT(isPowerOf2(geometry_.dimmsPerChannel) &&
                      isPowerOf2(geometry_.ranksPerDimm),
                  "per-channel geometry must be powers of two");
}

unsigned
AddressMapper::rankShift() const
{
    FAFNIR_ASSERT(policy_ == Interleave::BlockRank,
                  "rankShift only defined for BlockRank interleave");
    return floorLog2(blockBytes_);
}

Coordinates
AddressMapper::decode(Addr addr) const
{
    const Geometry &g = geometry_;
    FAFNIR_ASSERT(addr < g.capacityBytes(), "address 0x", std::hex, addr,
                  " beyond capacity");

    Coordinates c;
    if (policy_ == Interleave::BlockRank) {
        const unsigned offset_bits = floorLog2(blockBytes_);
        const unsigned rank_bits = floorLog2(g.totalRanks());
        const unsigned blocks_per_row = g.rowBytes / blockBytes_;
        const unsigned block_bits = floorLog2(blocks_per_row);
        const unsigned bank_bits = floorLog2(g.banksPerRank);

        const std::uint64_t offset = bits(addr, offset_bits - 1, 0);
        const auto grank = static_cast<unsigned>(
            rank_bits ? bits(addr, offset_bits + rank_bits - 1, offset_bits)
                      : 0);
        std::uint64_t rest = addr >> (offset_bits + rank_bits);

        const std::uint64_t block_in_row =
            block_bits ? (rest & (blocks_per_row - 1)) : 0;
        rest >>= block_bits;
        c.bank = static_cast<unsigned>(rest & (g.banksPerRank - 1));
        c.row = rest >> bank_bits;

        // Channel occupies the low rank bits so consecutive blocks spread
        // over channels first, maximizing parallel gather bandwidth.
        c.channel = grank & (g.channels - 1);
        const unsigned in_channel = grank >> floorLog2(g.channels);
        c.dimm = in_channel & (g.dimmsPerChannel - 1);
        c.rank = in_channel >> floorLog2(g.dimmsPerChannel);

        const std::uint64_t byte_in_row = block_in_row * blockBytes_ + offset;
        c.column = static_cast<unsigned>(byte_in_row &
                                         ~std::uint64_t(g.burstBytes - 1));
    } else {
        // LineChannel: row | rank | dimm | bank | column | channel | offset
        const unsigned offset_bits = floorLog2(g.burstBytes);
        const unsigned chan_bits = floorLog2(g.channels);
        const unsigned col_slots = g.rowBytes / g.burstBytes;
        const unsigned col_bits = floorLog2(col_slots);
        const unsigned bank_bits = floorLog2(g.banksPerRank);
        const unsigned dimm_bits = floorLog2(g.dimmsPerChannel);

        std::uint64_t rest = addr >> offset_bits;
        c.channel = static_cast<unsigned>(rest & (g.channels - 1));
        rest >>= chan_bits;
        const unsigned col_slot =
            static_cast<unsigned>(rest & (col_slots - 1));
        c.column = col_slot * g.burstBytes;
        rest >>= col_bits;
        c.bank = static_cast<unsigned>(rest & (g.banksPerRank - 1));
        rest >>= bank_bits;
        c.dimm = static_cast<unsigned>(rest & (g.dimmsPerChannel - 1));
        rest >>= dimm_bits;
        c.rank = static_cast<unsigned>(rest & (g.ranksPerDimm - 1));
        rest >>= floorLog2(g.ranksPerDimm);
        c.row = rest;
    }

    FAFNIR_ASSERT(c.row < g.rowsPerBank, "row out of range");
    return c;
}

Addr
AddressMapper::encode(const Coordinates &c) const
{
    const Geometry &g = geometry_;
    if (policy_ == Interleave::BlockRank) {
        const unsigned offset_bits = floorLog2(blockBytes_);
        const unsigned rank_bits = floorLog2(g.totalRanks());
        const unsigned blocks_per_row = g.rowBytes / blockBytes_;
        const unsigned block_bits = floorLog2(blocks_per_row);
        const unsigned bank_bits = floorLog2(g.banksPerRank);

        const unsigned grank =
            c.channel |
            ((c.dimm | (c.rank << floorLog2(g.dimmsPerChannel)))
             << floorLog2(g.channels));

        const std::uint64_t block_in_row = c.column / blockBytes_;
        const std::uint64_t offset = c.column % blockBytes_;

        std::uint64_t rest = (c.row << bank_bits) | c.bank;
        rest = (rest << block_bits) | block_in_row;
        return (rest << (offset_bits + rank_bits)) |
               (static_cast<std::uint64_t>(grank) << offset_bits) | offset;
    }

    const unsigned offset_bits = floorLog2(g.burstBytes);
    const unsigned col_slots = g.rowBytes / g.burstBytes;

    std::uint64_t rest = c.row;
    rest = (rest << floorLog2(g.ranksPerDimm)) | c.rank;
    rest = (rest << floorLog2(g.dimmsPerChannel)) | c.dimm;
    rest = (rest << floorLog2(g.banksPerRank)) | c.bank;
    rest = (rest << floorLog2(col_slots)) | (c.column / g.burstBytes);
    rest = (rest << floorLog2(g.channels)) | c.channel;
    return rest << offset_bits;
}

std::string
toString(const Coordinates &c)
{
    std::ostringstream os;
    os << "ch" << c.channel << ".dimm" << c.dimm << ".rk" << c.rank << ".bk"
       << c.bank << ".row" << c.row << ".col" << c.column;
    return os.str();
}

} // namespace fafnir::dram
