/**
 * @file
 * DRAM system geometry.
 *
 * The paper's target system (Figure 4a) is a four-channel DDR4 memory with
 * four DIMMs per channel and two ranks per DIMM — 32 ranks total. The
 * geometry here is fully parameterized so the scalability experiments
 * (Figure 12 sweeps ranks from 2 to 32) reuse the same model.
 */

#ifndef FAFNIR_DRAM_CONFIG_HH
#define FAFNIR_DRAM_CONFIG_HH

#include <cstdint>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fafnir::dram
{

/** Physical organization of the memory system. */
struct Geometry
{
    unsigned channels = 4;
    unsigned dimmsPerChannel = 4;
    unsigned ranksPerDimm = 2;
    unsigned banksPerRank = 16;
    /** DDR4 bank groups per rank: back-to-back column commands to
     *  different groups pace at tCCD_S, same group at tCCD_L. */
    unsigned bankGroups = 4;
    /** Row-buffer (page) size per rank in bytes (8 chips x 1 KB page). */
    unsigned rowBytes = 8192;
    /** Bytes moved by one burst (BL8 on a 64-bit rank interface). */
    unsigned burstBytes = 64;
    /** Rows per bank. */
    std::uint64_t rowsPerBank = 1ULL << 16;

    unsigned
    ranksPerChannel() const
    {
        return dimmsPerChannel * ranksPerDimm;
    }

    unsigned totalDimms() const { return channels * dimmsPerChannel; }
    unsigned totalRanks() const { return channels * ranksPerChannel(); }

    std::uint64_t
    bytesPerRank() const
    {
        return static_cast<std::uint64_t>(banksPerRank) * rowsPerBank *
               rowBytes;
    }

    std::uint64_t
    capacityBytes() const
    {
        return bytesPerRank() * totalRanks();
    }

    /** Validate invariants the address mapper depends on. */
    void
    check() const
    {
        FAFNIR_ASSERT(channels > 0 && dimmsPerChannel > 0 &&
                          ranksPerDimm > 0 && banksPerRank > 0,
                      "empty geometry");
        FAFNIR_ASSERT(isPowerOf2(channels), "channels must be a power of 2");
        FAFNIR_ASSERT(isPowerOf2(ranksPerChannel()),
                      "ranks/channel must be a power of 2");
        FAFNIR_ASSERT(isPowerOf2(banksPerRank),
                      "banks must be a power of 2");
        FAFNIR_ASSERT(bankGroups > 0 && banksPerRank % bankGroups == 0,
                      "banks must divide evenly into groups");
        FAFNIR_ASSERT(isPowerOf2(rowBytes) && isPowerOf2(burstBytes),
                      "row/burst sizes must be powers of 2");
        FAFNIR_ASSERT(rowBytes % burstBytes == 0,
                      "row must hold whole bursts");
    }

    /**
     * HBM2 organization for the Section VIII future-work integration:
     * 32 pseudo channels (two 16-PC stacks), each modelled as a
     * single-rank "channel" with a 1 KB page and 32 B bursts. The tree's
     * leaves attach to pseudo channels instead of ranks; everything else
     * is unchanged.
     */
    static Geometry
    hbm2()
    {
        Geometry g;
        g.channels = 32;
        g.dimmsPerChannel = 1;
        g.ranksPerDimm = 1;
        g.banksPerRank = 16;
        g.rowBytes = 1024;
        g.burstBytes = 32;
        // Sized so the same 16 GB embedding space used on the DDR4
        // system also fits the pseudo-channel address map.
        g.rowsPerBank = 1ull << 16;
        return g;
    }

    /**
     * A geometry with @p total_ranks ranks that keeps two ranks per DIMM
     * and at most four channels — the shape used by the rank-scaling sweep
     * in Figure 12.
     */
    static Geometry
    withTotalRanks(unsigned total_ranks)
    {
        FAFNIR_ASSERT(isPowerOf2(total_ranks) && total_ranks >= 1,
                      "rank count must be a power of two");
        Geometry g;
        if (total_ranks == 1) {
            g.channels = 1;
            g.dimmsPerChannel = 1;
            g.ranksPerDimm = 1;
            return g;
        }
        g.ranksPerDimm = 2;
        const unsigned dimms = total_ranks / 2;
        g.channels = dimms >= 4 ? 4 : dimms;
        g.dimmsPerChannel = dimms / g.channels;
        if (g.dimmsPerChannel == 0)
            g.dimmsPerChannel = 1;
        FAFNIR_ASSERT(g.totalRanks() == total_ranks,
                      "cannot realize rank count ", total_ranks);
        return g;
    }
};

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_CONFIG_HH
