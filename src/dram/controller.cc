/**
 * @file
 * Implementation of the queued memory controller.
 */

#include "controller.hh"

#include <algorithm>

#include "common/debug.hh"
#include "common/faultinject.hh"
#include "telemetry/attribution.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir::dram
{

Controller::Controller(MemorySystem &memory, SchedulingPolicy policy,
                       Tick age_cap_ticks)
    : memory_(memory), policy_(policy), ageCap_(age_cap_ticks)
{
    queues_.resize(memory_.geometry().totalRanks());
}

void
Controller::enqueue(Addr addr, unsigned bytes, Tick when,
                    Destination dest, Callback on_complete)
{
    const Coordinates coords = memory_.mapper().decode(addr);
    const unsigned rank = coords.globalRank(memory_.geometry());
    RankQueue &queue = queues_[rank];

    queue.requests.push_back({addr, bytes, dest, when, sequence_++,
                              memory_.eventq().currentFlow(),
                              std::move(on_complete)});
    ++pending_;
    if (auto *ts = telemetry::sink()) {
        ts->counterEvent(telemetry::kPidDram, "ctrl.pending",
                         std::max(when, memory_.eventq().now()),
                         static_cast<double>(pending_));
    }

    if (!queue.draining) {
        queue.draining = true;
        EventQueue &eq = memory_.eventq();
        eq.scheduleFn(std::max(when, eq.now()),
                      [this, rank] { drain(rank); });
    }
}

std::size_t
Controller::pickNext(const RankQueue &queue, unsigned rank,
                     Tick now) const
{
    // Consider only requests that have arrived.
    std::size_t oldest = queue.requests.size();
    for (std::size_t i = 0; i < queue.requests.size(); ++i) {
        const Request &r = queue.requests[i];
        if (r.arrival > now)
            continue;
        if (oldest == queue.requests.size() ||
            r.sequence < queue.requests[oldest].sequence) {
            oldest = i;
        }
    }
    if (oldest == queue.requests.size())
        return oldest; // nothing arrived yet

    if (policy_ == SchedulingPolicy::Fcfs)
        return oldest;

    // FR-FCFS with an age cap: the oldest request wins outright once it
    // has waited too long.
    if (ageCap_ > 0 &&
        now - queue.requests[oldest].arrival > ageCap_) {
        return oldest;
    }

    std::size_t best_hit = queue.requests.size();
    for (std::size_t i = 0; i < queue.requests.size(); ++i) {
        const Request &r = queue.requests[i];
        if (r.arrival > now)
            continue;
        const Coordinates c = memory_.mapper().decode(r.addr);
        if (memory_.openRow(rank, c.bank) !=
            static_cast<std::int64_t>(c.row)) {
            continue;
        }
        if (best_hit == queue.requests.size() ||
            r.sequence < queue.requests[best_hit].sequence) {
            best_hit = i;
        }
    }
    return best_hit != queue.requests.size() ? best_hit : oldest;
}

void
Controller::drain(unsigned rank)
{
    RankQueue &queue = queues_[rank];
    EventQueue &eq = memory_.eventq();
    const Tick now = eq.now();

    if (queue.requests.empty()) {
        queue.draining = false;
        return;
    }

    // Transient command stall (dram_stall hook): the controller backs
    // off and re-drains later, so a stalled pick is a delayed issue — a
    // retry in controller terms — not a lost request.
    if (fault::FaultPlan *p = fault::plan(); p != nullptr) {
        if (const Tick stall = p->dramStallTicks(); stall != 0) {
            ++stalled_;
            if (auto *ts = telemetry::sink()) {
                ts->instantEvent(telemetry::kPidDram,
                                 static_cast<int>(rank), "fault",
                                 "dram_stall", now,
                                 {{"stallNs", static_cast<double>(stall) /
                                                  kTicksPerNs}});
            }
            eq.scheduleFn(now + stall, [this, rank] { drain(rank); });
            return;
        }
    }

    const std::size_t pick = pickNext(queue, rank, now);
    if (pick == queue.requests.size()) {
        // Nothing has arrived yet; wake at the earliest arrival.
        Tick earliest = MaxTick;
        for (const Request &r : queue.requests)
            earliest = std::min(earliest, r.arrival);
        eq.scheduleFn(earliest, [this, rank] { drain(rank); });
        return;
    }

    // Out-of-order issue if any arrived request is older than the pick.
    const Request picked = std::move(queue.requests[pick]);
    for (const Request &r : queue.requests) {
        if (r.arrival <= now && r.sequence < picked.sequence) {
            ++reordered_;
            break;
        }
    }
    queue.requests.erase(queue.requests.begin() +
                         static_cast<std::ptrdiff_t>(pick));

    const Tick issue_at = std::max(now, queue.nextIssue);
    // Restore the enqueuer's flow so the read's trace span and the
    // completion callback chain stay attributed to the right query.
    eq.setCurrentFlow(picked.flow);
    const AccessResult result =
        memory_.read(picked.addr, picked.bytes, issue_at, picked.dest);
    FAFNIR_DPRINTF(Controller, "rank ", rank, " issued 0x", std::hex,
                   picked.addr, std::dec, " at ", issue_at,
                   " complete ", result.complete, " (",
                   result.rowHits ? "hit" : "miss", ")");
    // The next command can go out once this one's data window starts.
    queue.nextIssue = result.firstData;
    ++issued_;
    --pending_;
    if (auto *ts = telemetry::sink()) {
        // Queueing + service lifetime of the request on its rank track.
        ts->completeEvent(telemetry::kPidDram, static_cast<int>(rank),
                          "dram.ctrl", "request", picked.arrival,
                          result.complete - picked.arrival,
                          {{"queuedTicks",
                            static_cast<double>(issue_at -
                                                picked.arrival)},
                           {"flow",
                            static_cast<double>(picked.flow)}});
        ts->counterEvent(telemetry::kPidDram, "ctrl.pending", now,
                         static_cast<double>(pending_));
    }
    if (auto *attr = telemetry::attribution())
        attr->recordCtrlResidency(issue_at - picked.arrival);

    if (picked.onComplete) {
        eq.scheduleFn(result.complete,
                      [cb = std::move(picked.onComplete), result] {
                          cb(result.complete, result);
                      },
                      Event::DramPriority);
    }
    eq.setCurrentFlow(0);

    if (queue.requests.empty()) {
        queue.draining = false;
    } else {
        eq.scheduleFn(std::max(now, queue.nextIssue),
                      [this, rank] { drain(rank); });
    }
}

void
Controller::registerStats(StatGroup &group) const
{
    group.addCounter("issued", issued_, "requests issued to DRAM");
    group.addCounter("reordered", reordered_,
                     "issues that bypassed an older request");
    group.addCounter("stalled", stalled_,
                     "drain passes delayed by an injected command stall");
}

} // namespace fafnir::dram
