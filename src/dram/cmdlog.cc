/**
 * @file
 * Implementation of the protocol checker.
 */

#include "cmdlog.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "telemetry/trace_sink.hh"

namespace fafnir::dram
{

const char *
toString(DramCommand command)
{
    switch (command) {
      case DramCommand::Act:
        return "ACT";
      case DramCommand::Read:
        return "RD";
      case DramCommand::Pre:
        return "PRE";
      case DramCommand::Refresh:
        return "REF";
    }
    return "?";
}

namespace
{

struct BankCheckState
{
    bool open = false;
    std::uint64_t row = 0;
    Tick lastAct = 0;
    Tick lastPre = 0;
    bool everActivated = false;
    bool everPrecharged = false;
};

struct RankCheckState
{
    std::map<unsigned, BankCheckState> banks;
    std::deque<Tick> actWindow;
    Tick lastAct = 0;
    bool anyAct = false;
};

std::string
describe(const CommandRecord &r)
{
    std::ostringstream os;
    os << toString(r.command) << " rank " << r.rank << " bank " << r.bank
       << " row " << r.row << " @" << r.at;
    return os.str();
}

} // namespace

std::vector<ProtocolViolation>
checkProtocol(const CommandLog &log, const Timing &timing,
              const Geometry &geometry)
{
    (void)geometry;
    // Stable-sort per rank by time; call order breaks exact ties, which
    // is the causal order within a rank.
    std::vector<CommandRecord> sorted = log.records();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const CommandRecord &a, const CommandRecord &b) {
                         if (a.rank != b.rank)
                             return a.rank < b.rank;
                         return a.at < b.at;
                     });

    std::vector<ProtocolViolation> violations;
    auto violate = [&](const CommandRecord &r, const std::string &rule) {
        violations.push_back({r, rule + " (" + describe(r) + ")"});
    };

    std::map<unsigned, RankCheckState> ranks;
    for (const CommandRecord &r : sorted) {
        RankCheckState &rank = ranks[r.rank];
        BankCheckState &bank = rank.banks[r.bank];

        switch (r.command) {
          case DramCommand::Act:
            if (bank.open)
                violate(r, "ACT to an open bank");
            if (bank.everPrecharged && r.at < bank.lastPre + timing.tRP)
                violate(r, "tRP violated");
            if (rank.anyAct && r.at < rank.lastAct + timing.tRRD)
                violate(r, "tRRD violated");
            if (rank.actWindow.size() >= 4 &&
                r.at < rank.actWindow.front() + timing.tFAW) {
                violate(r, "tFAW violated");
            }
            rank.actWindow.push_back(r.at);
            while (rank.actWindow.size() > 4)
                rank.actWindow.pop_front();
            rank.lastAct = r.at;
            rank.anyAct = true;
            bank.open = true;
            bank.row = r.row;
            bank.lastAct = r.at;
            bank.everActivated = true;
            break;

          case DramCommand::Read:
            if (!bank.open)
                violate(r, "RD to a closed bank");
            else if (bank.row != r.row)
                violate(r, "RD to the wrong open row");
            if (bank.everActivated &&
                r.at < bank.lastAct + timing.tRCD) {
                violate(r, "tRCD violated");
            }
            break;

          case DramCommand::Pre:
            if (!bank.open)
                violate(r, "PRE to a closed bank");
            if (bank.everActivated &&
                r.at < bank.lastAct + timing.tRAS) {
                violate(r, "tRAS violated");
            }
            bank.open = false;
            bank.lastPre = r.at;
            bank.everPrecharged = true;
            break;

          case DramCommand::Refresh:
            // All-bank refresh requires every bank precharged in a real
            // device; the model refreshes between accesses, so just note
            // the window for completeness (no state to check here).
            break;
        }
    }
    return violations;
}

void
writeTrace(const CommandLog &log, telemetry::TraceSink &sink)
{
    for (const auto &record : log.records()) {
        sink.setThreadName(telemetry::kPidDram,
                           static_cast<int>(record.rank),
                           "rank " + std::to_string(record.rank));
        sink.instantEvent(telemetry::kPidDram,
                          static_cast<int>(record.rank), "dram.cmd",
                          toString(record.command), record.at,
                          {{"bank", static_cast<double>(record.bank)},
                           {"row", static_cast<double>(record.row)}});
    }
}

} // namespace fafnir::dram
