/**
 * @file
 * Cycle-level DDR4 memory-system model.
 *
 * Models per-bank row-buffer state (open-page policy), per-bank
 * tRCD/tCL/tRP/tRAS/tCCD/tRTP constraints, per-rank tRRD and tFAW
 * activation limits, the per-rank internal data bus, and the shared
 * per-channel data bus.
 *
 * Two delivery destinations are distinguished because they define the
 * paper's entire design space:
 *
 *  - Destination::Ndp  — the data stays inside the DIMM's buffer device
 *    (where TensorDIMM / RecNMP / Fafnir leaf PEs sit). It occupies the
 *    rank's internal bus but NOT the channel bus, so all ranks of a
 *    channel can stream to their NDP units concurrently.
 *  - Destination::Host — the data crosses the channel to the CPU and
 *    serializes on the channel data bus (the baseline path, and RecNMP's
 *    forwarded non-co-located vectors).
 *
 * The model is a resource-reservation timing calculator: each access asks
 * for the earliest completion consistent with all resource constraints and
 * advances the resources. Requests must be presented in non-decreasing
 * `earliest` order per caller for meaningful contention; the engines in
 * this repository do so by construction.
 */

#ifndef FAFNIR_DRAM_MEMSYSTEM_HH
#define FAFNIR_DRAM_MEMSYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address.hh"
#include "dram/cmdlog.hh"
#include "dram/config.hh"
#include "dram/timing.hh"
#include "sim/eventq.hh"

namespace fafnir::dram
{

/** Where read data is delivered. */
enum class Destination
{
    Ndp,
    Host,
};

/** Outcome of one (possibly multi-burst) access. */
struct AccessResult
{
    /** Tick at which the last data beat has been delivered. */
    Tick complete = 0;
    /** Tick at which the first data beat appears (pipelining begins). */
    Tick firstData = 0;
    unsigned rowHits = 0;
    unsigned rowMisses = 0;
    unsigned bursts = 0;
};

/**
 * The memory system: geometry + timing + live bank/rank/channel state.
 */
class MemorySystem
{
  public:
    MemorySystem(EventQueue &eq, const Geometry &geometry,
                 const Timing &timing,
                 Interleave interleave = Interleave::BlockRank,
                 unsigned block_bytes = 512);

    /**
     * Timing for reading @p bytes starting at @p addr, no earlier than
     * @p earliest, delivered to @p dest. Updates resource state.
     */
    AccessResult read(Addr addr, unsigned bytes, Tick earliest,
                      Destination dest);

    /**
     * Like read(), but invokes @p on_complete from the event queue at the
     * completion tick.
     */
    AccessResult readAsync(Addr addr, unsigned bytes, Tick earliest,
                           Destination dest,
                           std::function<void(Tick, const AccessResult &)>
                               on_complete);

    /**
     * Writes share the read datapath timing (tCWL ≈ tCL at this fidelity);
     * used by the Two-Step baseline to spill intermediate runs.
     */
    AccessResult write(Addr addr, unsigned bytes, Tick earliest,
                       Destination source);

    /**
     * Read @p bytes starting at explicit coordinates — used by engines
     * whose data layout is not an address-mapper policy (TensorDIMM's
     * column-major striping addresses each rank's local space directly).
     * Consecutive bursts advance the column and wrap to the next row of
     * the same bank.
     */
    AccessResult readAt(const Coordinates &coords, unsigned bytes,
                        Tick earliest, Destination dest);

    /**
     * Sequential bulk stream of @p bytes out of @p rank (LIL matrix
     * chunks in the SpMV engines). Bank interleaving hides row
     * activations in a sequential stream, so the cost is data-bus
     * occupancy; the access is accounted at burst granularity without
     * simulating each burst individually.
     * @return completion tick.
     */
    Tick streamFromRank(unsigned rank, std::uint64_t bytes, Tick earliest,
                        Destination dest);

    /** Bulk sequential write into @p rank; same cost model as streaming
     *  reads. */
    Tick streamToRank(unsigned rank, std::uint64_t bytes, Tick earliest);

    /**
     * Occupy the channel data bus for an NDP-to-host transfer of
     * @p bytes (partial results forwarded by RecNMP/TensorDIMM units).
     * Contends with DRAM reads destined for the host on the same channel.
     * @return completion tick.
     */
    Tick transferToHost(unsigned channel, unsigned bytes, Tick earliest);

    const Geometry &geometry() const { return mapper_.geometry(); }
    const Timing &timing() const { return timing_; }
    const AddressMapper &mapper() const { return mapper_; }
    EventQueue &eventq() { return eventq_; }

    /** Latency of an isolated closed-row single-burst read. */
    Tick
    closedRowReadLatency() const
    {
        return timing_.tRCD + timing_.tCL + timing_.tBurst;
    }

    /** Reset all bank/bus state and statistics (between experiments). */
    void reset();

    /** Attach a command log (nullptr detaches). Not owned. */
    void attachCommandLog(CommandLog *log) { commandLog_ = log; }

    /** Channel that physical @p rank lives on. */
    unsigned rankChannel(unsigned rank) const;

    /** Currently open row of (@p rank, @p bank), or -1 if precharged —
     *  exposed for open-page scheduling decisions. */
    std::int64_t openRow(unsigned rank, unsigned bank) const;

    /** @{ Statistics. */
    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }
    std::uint64_t burstCount() const { return bursts_.value(); }
    std::uint64_t rowHitCount() const { return rowHits_.value(); }
    std::uint64_t rowMissCount() const { return rowMisses_.value(); }
    std::uint64_t activationCount() const { return activations_.value(); }
    std::uint64_t bytesToHost() const { return bytesToHost_.value(); }
    std::uint64_t bytesToNdp() const { return bytesToNdp_.value(); }
    std::uint64_t refreshStallCount() const
    {
        return refreshStalls_.value();
    }

    /** Bursts served by one physical rank (traffic-balance telemetry). */
    std::uint64_t
    rankBurstCount(unsigned rank) const
    {
        return rankBursts_[rank].value();
    }

    /** Per-request read latency (ns), with percentiles. */
    const Distribution &readLatencyNs() const { return readLatencyNs_; }

    /**
     * Fraction of aggregate rank-bus capacity used over @p elapsed —
     * the roofline the paper argues Fafnir fills and the baselines
     * leave empty.
     */
    double rankBusUtilization(Tick elapsed) const;

    /** Fraction of aggregate channel-bus capacity used (host traffic). */
    double channelBusUtilization(Tick elapsed) const;

    /** Achieved DRAM read bandwidth over @p elapsed in GB/s. */
    double
    achievedBandwidthGBs(Tick elapsed) const
    {
        return elapsed == 0
            ? 0.0
            : static_cast<double>(bytesToHost_.value() +
                                  bytesToNdp_.value()) /
                  (static_cast<double>(elapsed) / kTicksPerSec) / 1e9;
    }
    void registerStats(StatGroup &group) const;
    /** @} */

  private:
    struct BankState
    {
        /** Open row, or -1 when precharged. */
        std::int64_t openRow = -1;
        /** Earliest next ACT to this bank. */
        Tick nextAct = 0;
        /** Earliest next column command. */
        Tick nextCas = 0;
        /** Earliest next PRE (tRAS / tRTP). */
        Tick nextPre = 0;
    };

    struct RankState
    {
        std::vector<BankState> banks;
        /** Sliding window of the last four ACT times (tFAW). */
        std::deque<Tick> actWindow;
        /** Earliest next ACT anywhere in the rank (tRRD). */
        Tick nextAct = 0;
        /** Rank-internal data bus. */
        Tick busFreeAt = 0;
        /** Start of the next refresh window (tREFI grid). */
        Tick nextRefresh = 0;
        /** Bank group of the most recent column command (-1 = none). */
        int lastCasGroup = -1;
        /** Issue time of the most recent column command. */
        Tick lastCasAt = 0;
    };

    /**
     * Delay @p t out of any refresh window the rank owes (all-bank
     * refresh blocks the rank for tRFC every tREFI).
     */
    Tick refreshAdjust(RankState &rank, Tick t);

    struct ChannelState
    {
        /** Channel data bus towards the host. */
        Tick busFreeAt = 0;
    };

    /** One burst; returns delivery-complete tick. */
    Tick accessBurst(const Coordinates &coords, Tick earliest,
                     Destination dest, AccessResult &result);

    RankState &rankState(const Coordinates &coords);

    EventQueue &eventq_;
    Timing timing_;
    AddressMapper mapper_;
    CommandLog *commandLog_ = nullptr;
    std::vector<RankState> ranks_;
    std::vector<ChannelState> channels_;

    Counter reads_;
    Counter writes_;
    Counter bursts_;
    Counter rowHits_;
    Counter rowMisses_;
    Counter activations_;
    Counter bytesToHost_;
    Counter bytesToNdp_;
    Counter refreshStalls_;
    /** Cumulative rank-bus occupancy across all ranks (ticks). */
    Counter rankBusBusy_;
    /** Cumulative channel-bus occupancy across all channels (ticks). */
    Counter channelBusBusy_;
    /** Bursts served per physical rank. */
    std::vector<Counter> rankBursts_;
    /** Completion - request time of each read() / readAt(), in ns. */
    Distribution readLatencyNs_;
};

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_MEMSYSTEM_HH
