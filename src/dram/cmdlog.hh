/**
 * @file
 * DRAM command logging and protocol checking.
 *
 * The timing model is a resource calculator; this pair of tools makes
 * its behavior auditable. A CommandLog attached to a MemorySystem
 * records every ACT/RD/PRE/REF with its issue tick; checkProtocol() then
 * replays the per-bank state machines and independently verifies the
 * JEDEC-style constraints (tRCD, tRAS, tRP, tRRD, tFAW, open-row
 * discipline). The checker shares no code with the calculator, so a bug
 * in either shows up as a reported violation — this is how the DRAM
 * model is property-tested.
 */

#ifndef FAFNIR_DRAM_CMDLOG_HH
#define FAFNIR_DRAM_CMDLOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/config.hh"
#include "dram/timing.hh"

namespace fafnir::telemetry
{
class TraceSink;
} // namespace fafnir::telemetry

namespace fafnir::dram
{

/** DRAM bus command kinds. */
enum class DramCommand
{
    Act,
    Read,
    Pre,
    Refresh,
};

const char *toString(DramCommand command);

/** One logged command. */
struct CommandRecord
{
    Tick at = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    DramCommand command = DramCommand::Act;
};

/** Append-only command log. */
class CommandLog
{
  public:
    void
    record(Tick at, unsigned rank, unsigned bank, std::uint64_t row,
           DramCommand command)
    {
        records_.push_back({at, rank, bank, row, command});
    }

    const std::vector<CommandRecord> &records() const { return records_; }
    void clear() { records_.clear(); }
    std::size_t size() const { return records_.size(); }

  private:
    std::vector<CommandRecord> records_;
};

/** One detected protocol violation. */
struct ProtocolViolation
{
    CommandRecord offender;
    std::string rule;
};

/**
 * Independently re-check @p log against @p timing. Commands are sorted
 * per rank by time before checking (the calculator computes ranks out of
 * call order).
 */
std::vector<ProtocolViolation>
checkProtocol(const CommandLog &log, const Timing &timing,
              const Geometry &geometry);

/**
 * Bridge a command log onto a trace timeline: every ACT/RD/PRE/REF
 * becomes an instant event on its rank's track of the "dram" process,
 * so per-rank command activity lines up against PE and batch spans.
 */
void writeTrace(const CommandLog &log, telemetry::TraceSink &sink);

} // namespace fafnir::dram

#endif // FAFNIR_DRAM_CMDLOG_HH
