/**
 * @file
 * Implementation of the event queue.
 */

#include "eventq.hh"

#include "common/logging.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir
{

void
EventQueue::schedule(Event &event, Tick when)
{
    FAFNIR_ASSERT(when >= now_, "scheduling event '", event.name(),
                  "' in the past: ", when, " < ", now_);
    if (event.scheduled_)
        --pendingCount_; // the stale queue entry becomes a no-op
    ++event.generation_;
    event.scheduled_ = true;
    event.when_ = when;
    queue_.push({when, event.priority_, sequence_++, &event,
                 event.generation_, nullptr});
    ++pendingCount_;
}

void
EventQueue::scheduleFn(Tick when, std::function<void()> fn, int priority)
{
    FAFNIR_ASSERT(when >= now_, "scheduling callback in the past: ", when,
                  " < ", now_);
    queue_.push({when, priority, sequence_++, nullptr, 0,
                 std::make_shared<std::function<void()>>(std::move(fn))});
    ++pendingCount_;
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.scheduled_)
        return;
    ++event.generation_; // invalidates the queue entry lazily
    event.scheduled_ = false;
    --pendingCount_;
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        QueuedEvent top = queue_.top();
        queue_.pop();
        if (top.event == nullptr) {
            FAFNIR_ASSERT(top.when >= now_,
                          "event queue time went backwards");
            now_ = top.when;
            --pendingCount_;
            ++executed_;
            if (auto *ts = telemetry::sink()) {
                ts->counterEvent(telemetry::kPidSim, "eventq.pending",
                                 now_,
                                 static_cast<double>(pendingCount_));
            }
            // The shared_ptr in `top` keeps the callable alive even if the
            // callback schedules more work or the queue reallocates.
            (*top.inlineFn)();
            return true;
        }
        if (top.generation != top.event->generation_)
            continue; // cancelled or rescheduled
        FAFNIR_ASSERT(top.when >= now_, "event queue time went backwards");
        now_ = top.when;
        top.event->scheduled_ = false;
        --pendingCount_;
        ++executed_;
        if (auto *ts = telemetry::sink()) {
            ts->instantEvent(telemetry::kPidSim, 0, "sim.dispatch",
                             top.event->name_, now_);
            ts->counterEvent(telemetry::kPidSim, "eventq.pending", now_,
                             static_cast<double>(pendingCount_));
        }
        top.event->callback_();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        const QueuedEvent &top = queue_.top();
        if (top.event != nullptr &&
            top.generation != top.event->generation_) {
            queue_.pop();
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    return now_;
}

} // namespace fafnir
