/**
 * @file
 * Implementation of the event queue.
 *
 * Structure invariants (established in the header comment):
 *  - windowBase_ <= now_ except transiently inside advance(), between a
 *    window re-base and the execution of the migrated heap minimum.
 *  - Live bucket entries sit in bucket[when - windowBase_]; ticks below
 *    now_ have already been drained, so their buckets are empty.
 *  - Heap entries satisfy when - windowBase_ >= kWindow: inserts target
 *    the heap only beyond the window, and every re-base migrates all
 *    entries that the new window covers.
 *  - The occupancy bitmap is exact: a bucket bit is set iff its chain is
 *    non-empty, and a summary bit iff its bitmap word is non-zero.
 */

#include "eventq.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/trace_sink.hh"

namespace fafnir
{

namespace
{

/** Children of 4-ary heap node @p i start at 4i+1; parent is (i-1)/4. */
constexpr std::size_t kHeapArity = 4;

} // namespace

EventQueue::EventQueue()
    : bucketHead_(kWindow, nullptr), bucketBits_(kWindow / 64, 0)
{
    for (std::uint64_t &word : summaryBits_)
        word = 0;
}

EventQueue::~EventQueue()
{
    // Destroy never-fired one-shot callbacks still sitting in the queue.
    const auto dropOneShot = [](Node *node) {
        if (node->event == nullptr)
            node->drop(node->storage);
    };
    for (std::size_t i = cacheIdx_; i < cache_.size(); ++i)
        dropOneShot(cache_[i].node);
    for (std::size_t word = 0; word < bucketBits_.size(); ++word) {
        std::uint64_t bits = bucketBits_[word];
        while (bits != 0) {
            const std::size_t bucket =
                word * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            for (Node *node = bucketHead_[bucket]; node != nullptr;
                 node = node->next) {
                dropOneShot(node);
            }
        }
    }
    for (const HeapEntry &entry : heap_)
        dropOneShot(entry.node);
}

EventQueue::Node *
EventQueue::allocNode()
{
    Node *node = freeHead_;
    if (node != nullptr) {
        freeHead_ = node->next;
        return node;
    }
    // New chunk, threaded onto the free list in address order.
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node *const chunk = chunks_.back().get();
    for (std::size_t i = kChunkNodes - 1; i > 0; --i)
        chunk[i].next = i + 1 < kChunkNodes ? &chunk[i + 1] : nullptr;
    freeHead_ = &chunk[1];
    return &chunk[0];
}

void
EventQueue::freeNode(Node *node)
{
    node->next = freeHead_;
    freeHead_ = node;
}

void
EventQueue::clearBucketBit(std::size_t bucket)
{
    std::uint64_t &word = bucketBits_[bucket >> 6];
    word &= ~(std::uint64_t(1) << (bucket & 63));
    if (word == 0) {
        summaryBits_[bucket >> 12] &=
            ~(std::uint64_t(1) << ((bucket >> 6) & 63));
    }
}

std::size_t
EventQueue::scanBuckets(std::size_t from) const
{
    std::size_t word = from >> 6;
    const std::uint64_t first =
        bucketBits_[word] & (~std::uint64_t(0) << (from & 63));
    if (first != 0)
        return (word << 6) + std::countr_zero(first);

    // The summary is exact, so any set summary bit names a non-empty word.
    std::size_t sword = word >> 6;
    const unsigned sbit = static_cast<unsigned>(word & 63);
    std::uint64_t summary =
        sbit == 63 ? 0
                   : summaryBits_[sword] & (~std::uint64_t(0) << (sbit + 1));
    constexpr std::size_t kSummaryWords = kWindow / 64 / 64;
    while (true) {
        if (summary != 0) {
            word = (sword << 6) + std::countr_zero(summary);
            const std::uint64_t bits = bucketBits_[word];
            return (word << 6) + std::countr_zero(bits);
        }
        if (++sword >= kSummaryWords)
            return kWindow;
        summary = summaryBits_[sword];
    }
}

void
EventQueue::heapPush(HeapEntry entry)
{
    std::size_t hole = heap_.size();
    heap_.push_back(entry);
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / kHeapArity;
        if (!heapBefore(entry, heap_[parent]))
            break;
        heap_[hole] = heap_[parent];
        hole = parent;
    }
    heap_[hole] = entry;
}

void
EventQueue::heapPopTop()
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        heapSiftDown(0, last);
}

void
EventQueue::heapSiftDown(std::size_t hole, HeapEntry entry)
{
    const std::size_t size = heap_.size();
    while (true) {
        const std::size_t first = hole * kHeapArity + 1;
        if (first >= size)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kHeapArity, size);
        for (std::size_t child = first + 1; child < last; ++child) {
            if (heapBefore(heap_[child], heap_[best]))
                best = child;
        }
        if (!heapBefore(heap_[best], entry))
            break;
        heap_[hole] = heap_[best];
        hole = best;
    }
    heap_[hole] = entry;
}

void
EventQueue::activateTick(Tick tick)
{
    const std::size_t bucket =
        static_cast<std::size_t>(tick - windowBase_);
    Node *node = bucketHead_[bucket];
    bucketHead_[bucket] = nullptr;
    clearBucketBit(bucket);

    cache_.clear();
    cacheIdx_ = 0;
    cacheTick_ = tick;
    activeBucket_ = bucket;
    cacheDirty_ = false;
    curSink_ = telemetry::sink();
    curRec_ = telemetry::flightRecorder();
    while (node != nullptr) {
        Node *const next = node->next;
        if (next != nullptr)
            __builtin_prefetch(next);
        if (isStaleNode(*node)) {
            --stale_;
            freeNode(node);
        } else {
            cache_.push_back({node->order, node});
        }
        node = next;
    }
    // The chain is newest-first; reversing restores insertion order,
    // which is already sorted unless priorities interleave.
    std::reverse(cache_.begin(), cache_.end());
    const auto less = [](const CacheEntry &a, const CacheEntry &b) {
        return a.order < b.order;
    };
    if (!std::is_sorted(cache_.begin(), cache_.end(), less))
        std::sort(cache_.begin(), cache_.end(), less);
}

void
EventQueue::refreshCache()
{
    Node *node = bucketHead_[activeBucket_];
    bucketHead_[activeBucket_] = nullptr;
    clearBucketBit(activeBucket_);
    cacheDirty_ = false;

    const std::size_t start = cache_.size();
    while (node != nullptr) {
        Node *const next = node->next;
        if (next != nullptr)
            __builtin_prefetch(next);
        if (isStaleNode(*node)) {
            --stale_;
            freeNode(node);
        } else {
            cache_.push_back({node->order, node});
        }
        node = next;
    }
    std::reverse(cache_.begin() + start, cache_.end());
    const auto less = [](const CacheEntry &a, const CacheEntry &b) {
        return a.order < b.order;
    };
    // New arrivals carry fresh sequence numbers, so appending keeps the
    // remainder sorted unless one outranks a pending entry by priority.
    if (!std::is_sorted(cache_.begin() + cacheIdx_, cache_.end(), less))
        std::sort(cache_.begin() + cacheIdx_, cache_.end(), less);
}

void
EventQueue::rebaseWindow()
{
    Tick base = heap_[0].when;
    if (base > MaxTick - kWindow + 1)
        base = MaxTick - kWindow + 1; // keep windowBase_+index overflow-free
    FAFNIR_ASSERT(base >= windowBase_, "window re-base moved backwards");
    windowBase_ = base;
    while (!heap_.empty()) {
        const HeapEntry top = heap_[0];
        const Tick delta = top.when - windowBase_;
        if (delta >= kWindow)
            break;
        heapPopTop();
        if (isStaleNode(*top.node)) {
            --stale_;
            freeNode(top.node);
        } else {
            // Heap pops arrive in (when, order) order, so same-tick
            // chains stay newest-first like direct inserts.
            bucketPush(static_cast<std::size_t>(delta), top.node);
        }
    }
}

Tick
EventQueue::advance(Tick limit)
{
    while (true) {
        const std::size_t from =
            now_ > windowBase_
                ? static_cast<std::size_t>(now_ - windowBase_)
                : 0;
        const std::size_t bucket = scanBuckets(from);
        if (bucket == kWindow) {
            // Nothing in the window; the heap minimum is next.
            while (!heap_.empty() && isStaleNode(*heap_[0].node)) {
                --stale_;
                freeNode(heap_[0].node);
                heapPopTop();
            }
            if (heap_.empty())
                return MaxTick;
            if (heap_[0].when > limit)
                return heap_[0].when;
            rebaseWindow();
            continue;
        }
        const Tick tick = windowBase_ + bucket;
        if (tick > limit)
            return tick;
        activateTick(tick);
        if (cacheIdx_ < cache_.size())
            return tick;
        // The tick held only stale entries; keep scanning.
    }
}

bool
EventQueue::fireNext()
{
    // Same-tick arrivals (scheduled while this tick drains) must be
    // merged before choosing the next entry.
    if (cacheDirty_)
        refreshCache();
    const CacheEntry entry = cache_[cacheIdx_++];
    // Pull the next entry's node in while this one executes.
    if (cacheIdx_ < cache_.size())
        __builtin_prefetch(cache_[cacheIdx_].node);
    Node *const node = entry.node;
    Event *const event = node->event;
    if (event != nullptr) {
        if (node->generation != event->generation_) {
            --stale_;
            freeNode(node);
            return false;
        }
        now_ = cacheTick_;
        event->scheduled_ = false;
        --pendingCount_;
        ++executed_;
        currentFlow_ = 0; // registered events run untagged
        freeNode(node);
        if (curSink_ != nullptr) {
            curSink_->instantEvent(telemetry::kPidSim, 0, "sim.dispatch",
                                   event->name_, now_);
            curSink_->counterEvent(telemetry::kPidSim, "eventq.pending",
                                   now_,
                                   static_cast<double>(pendingCount_));
        }
        // code 0 = registered event; a = queue depth after dispatch.
        if (curRec_ != nullptr)
            curRec_->record(telemetry::Stage::EventqDispatch, now_, 0,
                            pendingCount_, 0);
        event->callback_();
        return true;
    }
    now_ = cacheTick_;
    --pendingCount_;
    ++executed_;
    // Re-establish the scheduler's flow so work scheduled by this
    // callback inherits its cause (one-shots stash it in generation).
    // Both dispatch paths write currentFlow_ before firing, so no reset
    // is needed afterwards; out-of-dispatch scheduling that cares sets
    // its own flow (beginFlow / setCurrentFlow).
    currentFlow_ = node->generation;
    if (curSink_ != nullptr) {
        curSink_->counterEvent(telemetry::kPidSim, "eventq.pending", now_,
                               static_cast<double>(pendingCount_));
    }
    // code 1 = one-shot; a = queue depth after dispatch, b = flow id.
    if (curRec_ != nullptr)
        curRec_->record(telemetry::Stage::EventqDispatch, now_, 1,
                        pendingCount_, currentFlow_);
    // Invoke from the node (slab storage is stable even if the callback
    // schedules more work), then retire it.
    node->fire(node->storage);
    freeNode(node);
    return true;
}

/** Cold by design: only reached when a fault plan is installed, so the
 *  RNG draws stay out of the inlined scheduleFn fast path. Sampling
 *  order (drop, delay, dup) is part of the determinism contract; dup is
 *  only drawn for copyable callables so move-only schedules leave the
 *  dup stream untouched. */
[[gnu::noinline]] EventQueue::OneShotFaults
EventQueue::sampleOneShotFaults(Tick when, bool copyable)
{
    OneShotFaults f{false, false, when};
    if (faultPlan_->shouldFire(fault::Hook::EventDrop)) {
        f.drop = true;
        return f;
    }
    f.when = when + faultPlan_->eventDelayTicks();
    if (copyable)
        f.dup = faultPlan_->shouldFire(fault::Hook::EventDup);
    return f;
}

void
EventQueue::schedule(Event &event, Tick when)
{
    // Lossy hooks apply to registered events generation-aware, in the
    // same stream order as one-shots (drop, delay, dup):
    //  - event_drop consumes this (re)schedule: the generation bump
    //    stales any queued node, so exactly one firing is skipped and
    //    the owner's next schedule() recovers the event.
    //  - event_dup files a one-shot echo at the same (tick, priority)
    //    guarded by the generation captured at insert; it refires the
    //    callback after the real firing unless the event was
    //    rescheduled or cancelled in between, in which case the echo
    //    is suppressed and counted as a skipped firing.
    // Both outcomes update faults.<hook>.skipped, so a lossy-plan run
    // reports its effective registered-event coverage.
    if (faultPlan_ != nullptr) [[unlikely]] {
        if (faultPlan_->shouldFire(fault::Hook::EventDrop)) {
            faultPlan_->noteSkippedFiring(fault::Hook::EventDrop);
            if (event.scheduled_) {
                --pendingCount_;
                ++stale_;
            }
            ++event.generation_; // the queued node becomes a no-op
            event.scheduled_ = false;
            maybeCompact();
            return;
        }
        when += faultPlan_->eventDelayTicks();
    }
    if (event.scheduled_) {
        --pendingCount_; // the stale queue entry becomes a no-op
        ++stale_;
    }
    ++event.generation_;
    event.scheduled_ = true;
    event.when_ = when;
    Node *const node = allocNode();
    node->event = &event;
    node->generation = event.generation_;
    insertNode(node, when, event.priority_);
    maybeCompact();

    if (faultPlan_ != nullptr) [[unlikely]] {
        if (faultPlan_->shouldFire(fault::Hook::EventDup)) {
            Event *const ev = &event;
            const std::uint64_t gen = event.generation_;
            fault::FaultPlan *const plan = faultPlan_;
            // Inserted after the real node, so at the shared key the
            // echo fires second (insertion order breaks ties).
            emplaceOneShot(
                when,
                [ev, gen, plan] {
                    if (ev->generation_ == gen)
                        ev->callback_();
                    else
                        plan->noteSkippedFiring(fault::Hook::EventDup);
                },
                event.priority_);
        }
    }
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.scheduled_)
        return;
    ++event.generation_; // invalidates the queue entry lazily
    event.scheduled_ = false;
    --pendingCount_;
    ++stale_;
    maybeCompact();
}

void
EventQueue::maybeCompact()
{
    if (stale_ >= 64 && stale_ > pendingCount_)
        compact();
}

void
EventQueue::compact()
{
    // Cache remainder.
    const auto staleOut = [this](const CacheEntry &entry) {
        if (isStaleNode(*entry.node)) {
            --stale_;
            freeNode(entry.node);
            return true;
        }
        return false;
    };
    cache_.erase(std::remove_if(cache_.begin() +
                                    static_cast<std::ptrdiff_t>(cacheIdx_),
                                cache_.end(), staleOut),
                 cache_.end());

    // Bucket chains, preserving newest-first chain order.
    for (std::size_t word = 0; word < bucketBits_.size(); ++word) {
        std::uint64_t bits = bucketBits_[word];
        while (bits != 0) {
            const std::size_t bucket =
                word * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            Node *node = bucketHead_[bucket];
            Node *newHead = nullptr;
            Node **link = &newHead;
            while (node != nullptr) {
                Node *const next = node->next;
                if (isStaleNode(*node)) {
                    --stale_;
                    freeNode(node);
                } else {
                    *link = node;
                    link = &node->next;
                }
                node = next;
            }
            *link = nullptr;
            bucketHead_[bucket] = newHead;
            if (newHead == nullptr)
                clearBucketBit(bucket);
        }
    }

    // Heap: filter, then Floyd rebuild. Pop order depends only on the
    // (when, order) key, a total order, so rebuilding cannot change the
    // execution order.
    std::size_t kept = 0;
    for (const HeapEntry &entry : heap_) {
        if (isStaleNode(*entry.node)) {
            --stale_;
            freeNode(entry.node);
        } else {
            heap_[kept++] = entry;
        }
    }
    heap_.resize(kept);
    if (heap_.size() > 1) {
        for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;)
            heapSiftDown(i, heap_[i]);
    }
}

bool
EventQueue::step()
{
    while (true) {
        if (cacheIdx_ >= cache_.size()) {
            advance(MaxTick);
            if (cacheIdx_ >= cache_.size())
                return false; // idle
        }
        if (fireNext())
            return true;
    }
}

Tick
EventQueue::run(Tick limit)
{
    while (true) {
        if (cacheIdx_ >= cache_.size()) {
            advance(limit);
            if (cacheIdx_ >= cache_.size())
                break; // idle, or the next tick is beyond the limit
        } else if (cacheTick_ > limit) {
            break; // a partially drained tick left over from an earlier run
        }
        fireNext();
    }
    return now_;
}

} // namespace fafnir
