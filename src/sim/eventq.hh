/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-style event queue: events are callbacks scheduled at
 * absolute ticks (picoseconds); the queue pops them in (tick, priority,
 * insertion-order) order. All timing models in the repository — DRAM
 * banks, Fafnir PEs, channel buses, baseline NDP units — are driven from
 * one EventQueue per simulated system.
 *
 * Hot-path design. Every pending entry lives in a slab of pooled nodes
 * with inline callback storage, so scheduling and firing a one-shot
 * allocates nothing. The pending set is split by distance from the
 * clock:
 *
 *  - Near future (a sliding window of one-tick buckets): schedule is an
 *    O(1) chain push plus an occupancy-bitmap bit; pop drains one tick
 *    at a time through a small sorted cache, so same-window events are
 *    ordered with at most one sortedness check and no per-event heap
 *    sifts. A two-level bitmap finds the next occupied tick in a few
 *    word scans.
 *  - Far future: a 4-ary min-heap of compact (tick, order, node)
 *    entries. When the window drains past its end, it is re-based at
 *    the heap's minimum and heap entries inside the new window migrate
 *    into buckets — each entry pays the heap cost at most once.
 *
 * Cancellation is lazy via generation counting; stale nodes are dropped
 * when their tick drains, and both structures are compacted once stale
 * entries outnumber live ones, so reschedule-heavy components cannot
 * grow the queue without bound. The (tick, priority, insertion-order)
 * contract is identical to the heap-only kernel and is pinned by the
 * determinism tests.
 */

#ifndef FAFNIR_SIM_EVENTQ_HH
#define FAFNIR_SIM_EVENTQ_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace fafnir::telemetry
{
class TraceSink;
class FlightRecorder;
} // namespace fafnir::telemetry

namespace fafnir
{

/**
 * An event: a named callback with a scheduling priority. Events are owned
 * by their creating component and may be (re)scheduled on one queue at a
 * time; descheduling is handled by generation counting, so cancel() is O(1).
 *
 * Names are debug labels, not owned storage: an Event keeps only the
 * pointer, so pass a string literal (or any string that outlives the
 * event). Hot paths construct events by the thousand and must not copy
 * a std::string each time.
 */
class Event
{
  public:
    /** Lower value runs earlier among events at the same tick. Must fit
     *  in 16 bits — the queue packs (priority, sequence) into one
     *  comparison key. */
    enum Priority : int
    {
        DramPriority = 10,
        DefaultPriority = 50,
        StatsPriority = 90,
    };

    template <typename F>
    explicit Event(const char *name, F &&callback,
                   int priority = DefaultPriority)
        : name_(name), callback_(std::forward<F>(callback)),
          priority_(priority)
    {}

    const char *name() const { return name_; }
    int priority() const { return priority_; }
    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    const char *name_;
    std::function<void()> callback_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * The simulation clock and pending-event set.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * @{ Causal flow ids. A flow tags a chain of one-shot callbacks with
     * the event that originated it: scheduleFn() captures the ambient
     * flow into the node, and firing the node re-establishes it, so
     * everything a callback schedules inherits its cause (0 = untagged).
     * Components start a chain with beginFlow() — ids are monotonically
     * increasing — before scheduling its first event, and instrumentation
     * reads currentFlow() to tag spans. Registered Events do not carry
     * flows; their callbacks run untagged.
     */
    std::uint64_t
    beginFlow()
    {
        currentFlow_ = ++flowCounter_;
        return currentFlow_;
    }

    std::uint64_t currentFlow() const { return currentFlow_; }
    void setCurrentFlow(std::uint64_t flow) { currentFlow_ = flow; }

    /** The most recently allocated flow id (0 = none yet). */
    std::uint64_t lastFlowId() const { return flowCounter_; }
    /** @} */

    /**
     * Schedule @p event at absolute tick @p when (>= now). An already-
     * scheduled event is moved to the new time.
     *
     * Fault hooks (with a fault::FaultPlan installed when the queue was
     * built) apply generation-aware: event_drop consumes this schedule
     * — one firing is skipped, the owner's next schedule() recovers —
     * event_dup files a generation-guarded echo that refires the
     * callback unless the event was rescheduled or cancelled first,
     * and event_delay adds delivery jitter. Skipped/suppressed firings
     * count under faults.<hook>.skipped.
     */
    void schedule(Event &event, Tick when);

    /** Remove @p event from the queue if pending. */
    void deschedule(Event &event);

    /**
     * Schedule a one-shot callback at @p when. The queue owns the callback;
     * there is no handle and no way to cancel — use an Event for that.
     * The callable is stored inline in a pooled node (no allocation when
     * it fits the node's storage, as every callable in the repo does).
     *
     * Fault hooks (only with a fault::FaultPlan installed when the
     * queue is built, otherwise one member test): event_drop discards
     * the callback outright, event_dup files a second copy at the same
     * tick (copyable callables only), event_delay adds delivery jitter.
     * Registered Events take the same hooks through schedule(), where
     * generation counting makes drops and duplicate echoes safe (see
     * schedule()'s contract).
     */
    template <typename F>
    void
    scheduleFn(Tick when, F &&fn, int priority = Event::DefaultPriority)
    {
        static_assert(std::is_invocable_v<std::decay_t<F>>,
                      "scheduleFn callable must take no arguments");
        using Fn = std::decay_t<F>;
        if (faultPlan_ != nullptr) [[unlikely]] {
            const OneShotFaults f = sampleOneShotFaults(
                when, std::is_copy_constructible_v<Fn>);
            if (f.drop)
                return;
            when = f.when;
            if constexpr (std::is_copy_constructible_v<Fn>) {
                if (f.dup)
                    emplaceDup<Fn>(when, fn, priority);
            }
        }
        emplaceOneShot(when, std::forward<F>(fn), priority);
    }

  private:
    /** Fault verdict for one scheduleFn call. */
    struct OneShotFaults
    {
        bool drop;
        bool dup;
        Tick when;
    };

    /** Draw the drop / delay / dup decisions for a one-shot. Cold and
     *  out-of-line so the fault machinery (three RNG streams) never
     *  bloats the inlined scheduleFn body. */
    OneShotFaults sampleOneShotFaults(Tick when, bool copyable);

    /** File the duplicate copy of a one-shot. Out-of-line so the
     *  callable's copy constructor (std::function for chained events)
     *  is not instantiated inside the hot scheduleFn body. */
    template <typename Fn>
    [[gnu::noinline]] void
    emplaceDup(Tick when, const Fn &fn, int priority)
    {
        emplaceOneShot(when, Fn(fn), priority);
    }
    /** File one one-shot node for @p fn at @p when (no fault hooks). */
    template <typename F>
    void
    emplaceOneShot(Tick when, F &&fn, int priority)
    {
        using Fn = std::decay_t<F>;
        Node *const node = allocNode();
        node->event = nullptr;
        // One-shots reuse the generation field — consulted only for
        // registered Events — as the causal flow tag, keeping the node
        // at two cache lines with no storage shrink.
        node->generation = currentFlow_;
        if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(node->storage))
                Fn(std::forward<F>(fn));
            node->fire = [](void *p) {
                Fn *f = static_cast<Fn *>(p);
                (*f)();
                f->~Fn();
            };
            node->drop = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        } else {
            // Oversized callable: one heap allocation, node holds a
            // pointer to it.
            ::new (static_cast<void *>(node->storage))
                Fn *(new Fn(std::forward<F>(fn)));
            node->fire = [](void *p) {
                Fn *f = *static_cast<Fn **>(p);
                (*f)();
                delete f;
            };
            node->drop = [](void *p) { delete *static_cast<Fn **>(p); };
        }
        insertNode(node, when, priority);
    }

  public:
    /** True if no events are pending. */
    bool empty() const { return pendingCount_ == 0; }

    /** Pending events, excluding cancelled/rescheduled generations. */
    std::size_t pendingCount() const { return pendingCount_; }

    /** Stale (cancelled or superseded) entries not yet reclaimed. */
    std::size_t staleCount() const { return stale_; }

    /**
     * Run until the queue drains or @p limit is reached.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick limit = MaxTick);

    /** Execute exactly one event if any is pending. @return false if idle. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    /**
     * Inline storage of a pooled one-shot callback. Sized so a Node is
     * exactly two cache lines, which still fits the largest hot-path
     * capture in the repo (a DRAM completion: AccessResult by value plus
     * a std::function continuation, 72 bytes).
     */
    static constexpr std::size_t kInlineCallbackBytes = 80;
    /** Near-future window: one bucket per tick. */
    static constexpr std::size_t kWindowBits = 14;
    static constexpr Tick kWindow = Tick(1) << kWindowBits;
    /** Nodes per slab chunk. */
    static constexpr std::size_t kChunkNodes = 256;

    /** One pending entry: chain link + ordering key + payload. The
     *  64-byte alignment keeps the header and a small callable in one
     *  cache line. */
    struct alignas(64) Node
    {
        /** (priority, sequence) packed into one comparison key. */
        std::uint64_t order;
        /** Registered event, or nullptr for a one-shot callback. */
        Event *event;
        /** Generation the entry was scheduled under (event entries). */
        std::uint64_t generation;
        /** Next node in the same bucket chain / free list. */
        Node *next;
        /** Invoke the stored callable, then destroy it. */
        void (*fire)(void *);
        /** Destroy the stored callable without calling it (teardown). */
        void (*drop)(void *);
        alignas(std::max_align_t) unsigned char
            storage[kInlineCallbackBytes];
    };
    static_assert(sizeof(Node) == 128, "Node should be two cache lines");

    /** Far-future heap entry; comparisons never touch the node. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t order;
        Node *node;
    };

    /** A drained-but-unexecuted entry of the active tick. */
    struct CacheEntry
    {
        std::uint64_t order;
        Node *node;
    };

    static bool
    heapBefore(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.order < b.order;
    }

    Node *allocNode();
    void freeNode(Node *node);
    void insertNode(Node *node, Tick when, int priority);
    void bucketPush(std::size_t bucket, Node *node);
    void clearBucketBit(std::size_t bucket);
    void heapPush(HeapEntry entry);
    void heapPopTop();
    void heapSiftDown(std::size_t hole, HeapEntry entry);
    /** First occupied bucket at or after @p from, or kWindow. */
    std::size_t scanBuckets(std::size_t from) const;
    /** Collect + sort the chain of @p tick's bucket into the cache. */
    void activateTick(Tick tick);
    /** Merge same-tick arrivals into the active cache. */
    void refreshCache();
    /** Re-base the window at the heap minimum, migrate entries in. */
    void rebaseWindow();
    /**
     * Find the next occupied tick and activate it if <= @p limit.
     * Returns that tick, or MaxTick when the queue is idle; a return
     * beyond @p limit means the tick was not activated.
     */
    Tick advance(Tick limit);
    /**
     * Execute cache_[cacheIdx_] (precondition: cache has remaining
     * entries). Returns false if the entry was stale and only dropped.
     */
    bool fireNext();
    /** Drop stale entries from all structures, reclaim their nodes. */
    void compact();
    void maybeCompact();

    bool
    isStaleNode(const Node &node) const
    {
        return node.event != nullptr &&
               node.generation != node.event->generation_;
    }

    /** Pooled entries in chunked slabs: node addresses stay stable while
     *  a firing callback schedules more work. */
    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeHead_ = nullptr;

    /** Near-future buckets: chain heads, newest first. */
    std::vector<Node *> bucketHead_;
    /** Two-level occupancy bitmap over the buckets. */
    std::vector<std::uint64_t> bucketBits_;
    std::uint64_t summaryBits_[kWindow / 64 / 64];
    Tick windowBase_ = 0;

    /** Far-future 4-ary min-heap. */
    std::vector<HeapEntry> heap_;

    /** Active-tick drain cache: entries sorted by order, cursor idx. */
    std::vector<CacheEntry> cache_;
    std::size_t cacheIdx_ = 0;
    Tick cacheTick_ = MaxTick;
    /** Bucket index of cacheTick_, or kWindow when no tick is active. */
    std::size_t activeBucket_ = kWindow;
    /** Set when a schedule lands on the active tick's bucket. */
    bool cacheDirty_ = false;
    /** Trace sink snapshot, refreshed per activated tick. */
    telemetry::TraceSink *curSink_ = nullptr;
    /** Flight recorder cached per active tick, like curSink_. */
    telemetry::FlightRecorder *curRec_ = nullptr;

    Tick now_ = 0;
    /** The fault plan installed when this queue was built (nullptr =
     *  injection off). Sampled once at construction so the hot path
     *  tests a member the schedule state keeps warm anyway — install
     *  the plan before building the simulated system. */
    fault::FaultPlan *faultPlan_ = fault::plan();
    /** Ambient causal flow inherited by scheduled one-shots. */
    std::uint64_t currentFlow_ = 0;
    /** Last flow id handed out by beginFlow(). */
    std::uint64_t flowCounter_ = 0;
    std::uint64_t sequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pendingCount_ = 0;
    std::size_t stale_ = 0;
};

/** Pack (priority, sequence) and file the node under @p when. Inline so
 *  scheduleFn compiles down to a handful of stores at the call site. */
inline void
EventQueue::insertNode(Node *node, Tick when, int priority)
{
    FAFNIR_ASSERT(when >= now_, "scheduling in the past: ", when, " < ",
                  now_);
    FAFNIR_ASSERT(priority >= -32768 && priority <= 32767,
                  "priority out of 16-bit range: ", priority);
    FAFNIR_ASSERT(sequence_ < (std::uint64_t(1) << 48),
                  "event sequence counter overflow");
    // One comparison key: biased 16-bit priority above a 48-bit sequence.
    node->order = (static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(priority + 32768))
                   << 48) |
                  sequence_++;
    const Tick delta = when - windowBase_;
    if (delta < kWindow)
        bucketPush(static_cast<std::size_t>(delta), node);
    else
        heapPush({when, node->order, node});
    ++pendingCount_;
}

inline void
EventQueue::bucketPush(std::size_t bucket, Node *node)
{
    Node *&head = bucketHead_[bucket];
    node->next = head;
    if (head == nullptr) {
        bucketBits_[bucket >> 6] |= std::uint64_t(1) << (bucket & 63);
        summaryBits_[bucket >> 12] |= std::uint64_t(1)
                                      << ((bucket >> 6) & 63);
    }
    head = node;
    if (bucket == activeBucket_)
        cacheDirty_ = true;
}

} // namespace fafnir

#endif // FAFNIR_SIM_EVENTQ_HH
