/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-style event queue: events are callbacks scheduled at
 * absolute ticks (picoseconds); the queue pops them in (tick, priority,
 * insertion-order) order. All timing models in the repository — DRAM
 * banks, Fafnir PEs, channel buses, baseline NDP units — are driven from
 * one EventQueue per simulated system.
 */

#ifndef FAFNIR_SIM_EVENTQ_HH
#define FAFNIR_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fafnir
{

/**
 * An event: a named callback with a scheduling priority. Events are owned
 * by their creating component and may be (re)scheduled on one queue at a
 * time; descheduling is handled by generation counting, so cancel() is O(1).
 */
class Event
{
  public:
    /** Lower value runs earlier among events at the same tick. */
    enum Priority : int
    {
        DramPriority = 10,
        DefaultPriority = 50,
        StatsPriority = 90,
    };

    explicit Event(std::string name, std::function<void()> callback,
                   int priority = DefaultPriority)
        : name_(std::move(name)), callback_(std::move(callback)),
          priority_(priority)
    {}

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }
    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    std::function<void()> callback_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * The simulation clock and pending-event set.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p event at absolute tick @p when (>= now). An already-
     * scheduled event is moved to the new time.
     */
    void schedule(Event &event, Tick when);

    /** Remove @p event from the queue if pending. */
    void deschedule(Event &event);

    /**
     * Schedule a one-shot callback at @p when. The queue owns the callback;
     * there is no handle and no way to cancel — use an Event for that.
     */
    void scheduleFn(Tick when, std::function<void()> fn,
                    int priority = Event::DefaultPriority);

    /** True if no events are pending. */
    bool empty() const { return pendingCount_ == 0; }

    std::size_t pendingCount() const { return pendingCount_; }

    /**
     * Run until the queue drains or @p limit is reached.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick limit = MaxTick);

    /** Execute exactly one event if any is pending. @return false if idle. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct QueuedEvent
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        /** Registered event, or nullptr for a one-shot callback. */
        Event *event;
        std::uint64_t generation;
        /** Owned callback when event == nullptr. */
        std::shared_ptr<std::function<void()>> inlineFn;

        bool
        operator>(const QueuedEvent &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return sequence > other.sequence;
        }
    };

    std::priority_queue<QueuedEvent, std::vector<QueuedEvent>,
                        std::greater<>>
        queue_;
    Tick now_ = 0;
    std::uint64_t sequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pendingCount_ = 0;
};

} // namespace fafnir

#endif // FAFNIR_SIM_EVENTQ_HH
