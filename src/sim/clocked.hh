/**
 * @file
 * Clock domains and clocked components.
 *
 * A ClockDomain converts between ticks (picoseconds) and cycles of a fixed
 * frequency; Clocked is the base for components that think in their own
 * cycles (PEs at 200 MHz, DDR4 channels at 1200 MHz command clock, a host
 * CPU at a few GHz).
 */

#ifndef FAFNIR_SIM_CLOCKED_HH
#define FAFNIR_SIM_CLOCKED_HH

#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/eventq.hh"

namespace fafnir
{

/** A fixed-frequency clock. */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (picoseconds). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks)
    {
        FAFNIR_ASSERT(period_ > 0, "clock period must be positive");
    }

    static ClockDomain fromMhz(double mhz)
    {
        return ClockDomain(periodFromMhz(mhz));
    }

    Tick period() const { return period_; }
    double frequencyMhz() const { return 1e6 / static_cast<double>(period_); }

    /** Ticks spanned by @p cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period_; }

    /** Whole cycles elapsed at @p tick (floor). */
    Cycles ticksToCycles(Tick tick) const { return tick / period_; }

    /** The first clock edge at or after @p tick. */
    Tick
    nextEdge(Tick tick) const
    {
        const Tick remainder = tick % period_;
        return remainder == 0 ? tick : tick + (period_ - remainder);
    }

  private:
    Tick period_;
};

/**
 * Base class for named components bound to an event queue and a clock.
 */
class Clocked
{
  public:
    Clocked(std::string name, EventQueue &eq, ClockDomain clock)
        : name_(std::move(name)), eventq_(eq), clock_(clock)
    {}

    virtual ~Clocked() = default;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return eventq_; }
    const ClockDomain &clock() const { return clock_; }

    /** Current time in this component's cycles. */
    Cycles curCycle() const { return clock_.ticksToCycles(eventq_.now()); }

    /** Absolute tick of the clock edge @p delta cycles from now. */
    Tick
    clockEdge(Cycles delta = 0) const
    {
        return clock_.nextEdge(eventq_.now()) + clock_.cyclesToTicks(delta);
    }

    /** Schedule @p event @p delta cycles ahead, aligned to a clock edge. */
    void
    scheduleCycles(Event &event, Cycles delta)
    {
        eventq_.schedule(event, clockEdge(delta));
    }

  private:
    std::string name_;
    EventQueue &eventq_;
    ClockDomain clock_;
};

} // namespace fafnir

#endif // FAFNIR_SIM_CLOCKED_HH
