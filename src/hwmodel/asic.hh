/**
 * @file
 * 7 nm ASIC area/power model (the paper's Table VI and Figure 16b).
 *
 * The model is compositional: per-PE area/power constants (taken from the
 * paper's ASAP7 implementation results) scale into DIMM/rank nodes (7
 * PEs), the channel node (3 PEs), and whole systems. The paper's headline
 * numbers — a 0.077 mm^2 PE (274 um x 282 um), a 0.283 mm^2 DIMM/rank
 * node (492 um x 575 um), the 0.121 mm^2 channel-node chip, ~1.25 mm^2
 * and 111.64 mW for the full 32-rank system, 23.82 mW per four DIMMs —
 * all derive from these constants.
 */

#ifndef FAFNIR_HWMODEL_ASIC_HH
#define FAFNIR_HWMODEL_ASIC_HH

#include <string>
#include <vector>

namespace fafnir::hwmodel
{

/** Area/power of one block. */
struct BlockCost
{
    std::string name;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** Per-PE component breakdown (Figure 16b's uniform distribution). */
struct PeBreakdown
{
    /** Fractions of PE area/power by component; sums to 1. */
    double inputFifos = 0.28;
    double computeUnits = 0.34;
    double mergeUnit = 0.22;
    double control = 0.16;
};

/** The 7 nm ASIC model. */
class AsicModel
{
  public:
    /** Paper constants (ASAP7, 7 nm). */
    struct Params
    {
        /** One PE: 274 um x 282 um. */
        double peWidthUm = 274.0;
        double peHeightUm = 282.0;
        /** DIMM/rank node chip: 492 um x 575 um (7 PEs). */
        double dimmNodeWidthUm = 492.0;
        double dimmNodeHeightUm = 575.0;
        /** Power of one DIMM/rank node (7 PEs + glue). */
        double dimmNodePowerMw = 23.82;
        /** Power of the channel node (3 PEs + glue). */
        double channelNodePowerMw = 16.36;
        /** Extra leaf-PE area to support SpMV multipliers. */
        double leafMultiplierAreaMm2 = 0.013;
        /** DDR4 DIMM power for scale (Micron power calculator). */
        double dimmPowerW = 13.0;
    };

    AsicModel() : params_(Params{}) {}
    explicit AsicModel(const Params &params) : params_(params) {}

    double peAreaMm2() const;
    double dimmRankNodeAreaMm2() const;
    double channelNodeAreaMm2() const;
    double pePowerMw() const;

    /** Full system: @p channels DIMM/rank nodes + one channel node. */
    double systemAreaMm2(unsigned channels = 4) const;
    double systemPowerMw(unsigned channels = 4) const;

    /** Overhead relative to the DRAM the chips serve. */
    double powerOverheadFraction(unsigned dimms = 16) const;

    /** Per-block rows of Table VI. */
    std::vector<BlockCost> tableVi(unsigned channels = 4) const;

    /** Figure 16b: per-component power of one PE. */
    std::vector<BlockCost>
    peBreakdown(const PeBreakdown &fractions = {}) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/**
 * Comparison point from prior work: a RecNMP processing unit is estimated
 * at 0.54 mm^2 and 184.2 mW per DIMM at 40 nm / 250 MHz.
 */
struct RecNmpCost
{
    double areaPerDimmMm2 = 0.54;
    double powerPerDimmMw = 184.2;

    double
    systemAreaMm2(unsigned dimms = 16) const
    {
        return areaPerDimmMm2 * dimms;
    }

    double
    systemPowerMw(unsigned dimms = 16) const
    {
        return powerPerDimmMw * dimms;
    }
};

} // namespace fafnir::hwmodel

#endif // FAFNIR_HWMODEL_ASIC_HH
