/**
 * @file
 * DRAM energy model.
 *
 * The paper's memory-energy-saving argument (Section VI) is linear in the
 * number of eliminated accesses: "the energy consumption of DRAM
 * dominates that of computation". This model maps access counts from the
 * DDR4 simulator onto per-operation energies in the range of Micron DDR4
 * power-calculator outputs, so benches can report both access counts and
 * the implied energy.
 */

#ifndef FAFNIR_HWMODEL_ENERGY_HH
#define FAFNIR_HWMODEL_ENERGY_HH

#include <cstdint>

namespace fafnir::hwmodel
{

/** Per-operation energies (nJ). */
struct DramEnergyParams
{
    /** One ACT+PRE pair. */
    double activationNj = 2.5;
    /** One 64 B read burst, array + internal data movement. */
    double readBurstNj = 3.1;
    /** Driving one 64 B burst across the channel to the host. */
    double channelIoNj = 5.4;
};

/** Energy accumulator fed from MemorySystem counters. */
class DramEnergyModel
{
  public:
    explicit DramEnergyModel(const DramEnergyParams &params = {})
        : params_(params)
    {}

    /** Total nJ for the given activity counts. */
    double
    energyNj(std::uint64_t activations, std::uint64_t bursts,
             std::uint64_t bytes_to_host, unsigned burst_bytes = 64) const
    {
        const double io_bursts =
            static_cast<double>(bytes_to_host) / burst_bytes;
        return static_cast<double>(activations) * params_.activationNj +
               static_cast<double>(bursts) * params_.readBurstNj +
               io_bursts * params_.channelIoNj;
    }

    const DramEnergyParams &params() const { return params_; }

  private:
    DramEnergyParams params_;
};

/**
 * Per-operation energies of the tree interconnect (pJ). Link traversal
 * is charged per byte actually moved, so a compressed payload format
 * (embedding/quantize.hh) saves link energy in proportion to its byte
 * width; the meeting-logic codec work (dequantize both operands,
 * requantize the partial) is charged per vector element converted.
 */
struct LinkEnergyParams
{
    /** Moving one byte across one PE-to-PE (or root-to-host) link. */
    double linkPjPerByte = 0.8;
    /** Converting one vector element between code and fp32. */
    double codecPjPerElement = 0.05;
};

/** Energy accumulator fed from link-byte and PE-activity counters. */
class LinkEnergyModel
{
  public:
    explicit LinkEnergyModel(const LinkEnergyParams &params = {})
        : params_(params)
    {}

    /**
     * Total nJ for @p link_bytes moved plus @p codec_ops vector
     * conversions of @p dim elements each (pass dequants + requants
     * from the aggregated PeActivity; 0 under fp32 transport).
     */
    double
    energyNj(std::uint64_t link_bytes, std::uint64_t codec_ops,
             unsigned dim) const
    {
        const double link_pj =
            static_cast<double>(link_bytes) * params_.linkPjPerByte;
        const double codec_pj = static_cast<double>(codec_ops) *
                                static_cast<double>(dim) *
                                params_.codecPjPerElement;
        return (link_pj + codec_pj) / 1000.0;
    }

    const LinkEnergyParams &params() const { return params_; }

  private:
    LinkEnergyParams params_;
};

} // namespace fafnir::hwmodel

#endif // FAFNIR_HWMODEL_ENERGY_HH
