/**
 * @file
 * Implementation of the FPGA model.
 */

#include "fpga.hh"

#include "common/intmath.hh"

namespace fafnir::hwmodel
{

FpgaUsage &
FpgaUsage::operator+=(const FpgaUsage &other)
{
    luts += other.luts;
    lutram += other.lutram;
    flipflops += other.flipflops;
    bram36 += other.bram36;
    dsp += other.dsp;
    return *this;
}

FpgaUsage
FpgaUsage::scaled(unsigned factor, std::string new_name) const
{
    FpgaUsage out = *this;
    out.name = std::move(new_name);
    out.luts *= factor;
    out.lutram *= factor;
    out.flipflops *= factor;
    out.bram36 *= factor;
    out.dsp *= factor;
    return out;
}

FpgaUsage
FpgaModel::peUsage(unsigned hw_batch) const
{
    // Logic scales with the compute-unit count (= B); buffers scale with
    // the entry count. Constants back out of the paper's system-level
    // utilization (31 PEs <= 5% LUT / 0.15% LUTRAM / 1% FF / 13% BRAM).
    FpgaUsage pe;
    pe.name = "PE(B=" + std::to_string(hw_batch) + ")";
    pe.luts = 60 * hw_batch; // compare/reduce/forward lanes
    pe.lutram = 28;          // small control FIFOs
    pe.flipflops = 24 * hw_batch;
    // Two input buffers of B entries x 592 B each in BRAM36 (4.5 KiB).
    pe.bram36 = static_cast<unsigned long>(
        divCeil(2ull * hw_batch * 592, 36 * 1024 / 8));
    pe.dsp = 16; // fp32 adders of the reduce path
    return pe;
}

FpgaUsage
FpgaModel::dimmRankNodeUsage(unsigned hw_batch) const
{
    FpgaUsage node = peUsage(hw_batch).scaled(7, "DIMM/rank node");
    node.luts += 600; // DDR PHY-side glue and arbitration
    node.flipflops += 400;
    return node;
}

FpgaUsage
FpgaModel::channelNodeUsage(unsigned hw_batch) const
{
    FpgaUsage node = peUsage(hw_batch).scaled(3, "channel node");
    node.luts += 800; // host-link interface
    node.flipflops += 600;
    return node;
}

FpgaUsage
FpgaModel::systemUsage(unsigned channels, unsigned hw_batch) const
{
    FpgaUsage system;
    system.name = "system";
    for (unsigned c = 0; c < channels; ++c)
        system += dimmRankNodeUsage(hw_batch);
    system += channelNodeUsage(hw_batch);
    return system;
}

std::vector<std::pair<std::string, double>>
FpgaModel::utilization(const FpgaUsage &usage) const
{
    auto pct = [](unsigned long used, unsigned long avail) {
        return 100.0 * static_cast<double>(used) /
               static_cast<double>(avail);
    };
    return {
        {"LUT", pct(usage.luts, device_.luts)},
        {"LUTRAM", pct(usage.lutram, device_.lutram)},
        {"FF", pct(usage.flipflops, device_.flipflops)},
        {"BRAM", pct(usage.bram36, device_.bram36)},
        {"DSP", pct(usage.dsp, device_.dsp)},
    };
}

std::vector<PowerSlice>
FpgaModel::dimmRankNodePower() const
{
    // Figure 16a: 0.23 W total at 200 MHz.
    return {
        {"clocks", 0.035},
        {"signals", 0.055},
        {"logic", 0.060},
        {"BRAM", 0.058},
        {"I/O", 0.022},
    };
}

std::vector<PowerSlice>
FpgaModel::channelNodePower() const
{
    // Figure 16a: 0.18 W total at 200 MHz.
    return {
        {"clocks", 0.028},
        {"signals", 0.042},
        {"logic", 0.045},
        {"BRAM", 0.040},
        {"I/O", 0.025},
    };
}

} // namespace fafnir::hwmodel
