/**
 * @file
 * XCVU9P FPGA resource and power model (Table V and Figure 16a).
 *
 * Per-PE resource costs are derived from the paper's system-level
 * utilization (a 4-DIMM/rank-node + 1-channel-node system uses up to 5 %
 * of LUTs, 0.15 % of LUTRAMs, 1 % of FFs, and 13 % of BRAM on an
 * XCVU9P); the model composes nodes and systems from them and reports
 * utilization and dynamic power.
 */

#ifndef FAFNIR_HWMODEL_FPGA_HH
#define FAFNIR_HWMODEL_FPGA_HH

#include <string>
#include <vector>

namespace fafnir::hwmodel
{

/** Device capacity of the Xilinx XCVU9P. */
struct FpgaDevice
{
    std::string name = "XCVU9P";
    unsigned long luts = 1182240;
    unsigned long lutram = 591840;
    unsigned long flipflops = 2364480;
    unsigned long bram36 = 2160;
    unsigned long dsp = 6840;
};

/** Resource usage of a block. */
struct FpgaUsage
{
    std::string name;
    unsigned long luts = 0;
    unsigned long lutram = 0;
    unsigned long flipflops = 0;
    unsigned long bram36 = 0;
    unsigned long dsp = 0;

    FpgaUsage &operator+=(const FpgaUsage &other);
    FpgaUsage scaled(unsigned factor, std::string new_name) const;
};

/** One category of the Figure 16a dynamic-power breakdown. */
struct PowerSlice
{
    std::string category;
    double watts = 0.0;
};

/** The FPGA implementation model. */
class FpgaModel
{
  public:
    explicit FpgaModel(const FpgaDevice &device = {}) : device_(device) {}

    /** One PE at batch size @p hw_batch (buffers scale with B). */
    FpgaUsage peUsage(unsigned hw_batch = 32) const;
    /** A DIMM/rank node: 7 PEs + node glue. */
    FpgaUsage dimmRankNodeUsage(unsigned hw_batch = 32) const;
    /** The channel node: 3 PEs + glue. */
    FpgaUsage channelNodeUsage(unsigned hw_batch = 32) const;
    /** Full system: 4 DIMM/rank nodes + 1 channel node. */
    FpgaUsage systemUsage(unsigned channels = 4,
                          unsigned hw_batch = 32) const;

    /** Utilization percentage of @p usage against the device. */
    std::vector<std::pair<std::string, double>>
    utilization(const FpgaUsage &usage) const;

    /** Figure 16a: dynamic power at 200 MHz per node type. */
    std::vector<PowerSlice> dimmRankNodePower() const;
    std::vector<PowerSlice> channelNodePower() const;

    const FpgaDevice &device() const { return device_; }

  private:
    FpgaDevice device_;
};

} // namespace fafnir::hwmodel

#endif // FAFNIR_HWMODEL_FPGA_HH
