/**
 * @file
 * End-to-end energy accounting for a lookup run.
 *
 * Section VI argues Fafnir's energy story in two parts: DRAM dominates
 * (so eliminated accesses are eliminated energy), and the tree itself
 * adds only milliwatts. This report composes the DRAM energy model with
 * the ASIC power model: DRAM energy from the memory system's activity
 * counters, NDP energy as (node power) x (busy time), and host energy
 * for the channel transfers it must absorb.
 */

#ifndef FAFNIR_HWMODEL_ENERGY_REPORT_HH
#define FAFNIR_HWMODEL_ENERGY_REPORT_HH

#include "common/types.hh"
#include "dram/memsystem.hh"
#include "hwmodel/asic.hh"
#include "hwmodel/energy.hh"

namespace fafnir::hwmodel
{

/** Energy of one experiment, in microjoules. */
struct EnergyBreakdown
{
    double dramUj = 0.0;
    double ndpUj = 0.0;
    double hostIoUj = 0.0;

    double total() const { return dramUj + ndpUj + hostIoUj; }
};

/** Composes the energy models over a finished run. */
class EnergyReport
{
  public:
    EnergyReport(const DramEnergyParams &dram_params = {},
                 const AsicModel &asic = AsicModel{})
        : dram_(dram_params), asic_(asic)
    {}

    /**
     * Account a run.
     * @param memory the memory system after the run (activity counters).
     * @param busy simulated wall-clock the NDP chips were powered.
     * @param channels DIMM/rank nodes in the system.
     * @param host_io_nj_per_byte host-side energy per byte received.
     */
    EnergyBreakdown
    account(const dram::MemorySystem &memory, Tick busy,
            unsigned channels = 4,
            double host_io_nj_per_byte = 0.05) const
    {
        EnergyBreakdown out;
        out.dramUj = dram_.energyNj(memory.activationCount(),
                                    memory.burstCount(),
                                    memory.bytesToHost(),
                                    memory.geometry().burstBytes) /
                     1000.0;
        // mW x seconds = mJ; busy is in picoseconds. channels == 0 means
        // no NDP silicon is installed at all (the no-NDP baseline).
        const double busy_s = static_cast<double>(busy) / 1e12;
        out.ndpUj = channels == 0
            ? 0.0
            : asic_.systemPowerMw(channels) * busy_s * 1000.0;
        out.hostIoUj = static_cast<double>(memory.bytesToHost()) *
                       host_io_nj_per_byte / 1000.0;
        return out;
    }

  private:
    DramEnergyModel dram_;
    AsicModel asic_;
};

} // namespace fafnir::hwmodel

#endif // FAFNIR_HWMODEL_ENERGY_REPORT_HH
