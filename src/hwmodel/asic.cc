/**
 * @file
 * Implementation of the ASIC cost model.
 */

#include "asic.hh"

namespace fafnir::hwmodel
{

double
AsicModel::peAreaMm2() const
{
    return params_.peWidthUm * params_.peHeightUm * 1e-6;
}

double
AsicModel::dimmRankNodeAreaMm2() const
{
    return params_.dimmNodeWidthUm * params_.dimmNodeHeightUm * 1e-6;
}

double
AsicModel::channelNodeAreaMm2() const
{
    // Three PEs plus the same per-node packing overhead ratio the
    // DIMM/rank node exhibits over its seven PEs.
    const double packing = dimmRankNodeAreaMm2() / (7.0 * peAreaMm2());
    return 3.0 * peAreaMm2() * packing;
}

double
AsicModel::pePowerMw() const
{
    return params_.dimmNodePowerMw / 7.0;
}

double
AsicModel::systemAreaMm2(unsigned channels) const
{
    return channels * dimmRankNodeAreaMm2() + channelNodeAreaMm2();
}

double
AsicModel::systemPowerMw(unsigned channels) const
{
    return channels * params_.dimmNodePowerMw +
           params_.channelNodePowerMw;
}

double
AsicModel::powerOverheadFraction(unsigned dimms) const
{
    const double dram_mw = params_.dimmPowerW * 1000.0 * dimms;
    return systemPowerMw(dimms / 4) / dram_mw;
}

std::vector<BlockCost>
AsicModel::tableVi(unsigned channels) const
{
    return {
        {"PE", peAreaMm2(), pePowerMw()},
        {"Leaf PE (with SpMV multipliers)",
         peAreaMm2() + params_.leafMultiplierAreaMm2, pePowerMw() * 1.15},
        {"DIMM/rank node (7 PEs)", dimmRankNodeAreaMm2(),
         params_.dimmNodePowerMw},
        {"Channel node (3 PEs)", channelNodeAreaMm2(),
         params_.channelNodePowerMw},
        {"System (" + std::to_string(channels) + " channels)",
         systemAreaMm2(channels), systemPowerMw(channels)},
    };
}

std::vector<BlockCost>
AsicModel::peBreakdown(const PeBreakdown &fractions) const
{
    const double area = peAreaMm2();
    const double power = pePowerMw();
    return {
        {"input FIFOs", area * fractions.inputFifos,
         power * fractions.inputFifos},
        {"compute units", area * fractions.computeUnits,
         power * fractions.computeUnits},
        {"merge unit", area * fractions.mergeUnit,
         power * fractions.mergeUnit},
        {"control", area * fractions.control, power * fractions.control},
    };
}

} // namespace fafnir::hwmodel
