/**
 * @file
 * Implementation of SpMV on the Fafnir tree.
 */

#include "fafnir_spmv.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fafnir::sparse
{

namespace
{

/** A row-sorted partial-result stream: (row, partial value) pairs. */
using Stream = std::vector<std::pair<std::uint32_t, float>>;

/** Sum-merge up to `ways` row-sorted streams into one. */
Stream
mergeStreams(const std::vector<Stream> &streams, std::size_t first,
             std::size_t last, std::uint64_t &reduces)
{
    Stream out;
    std::vector<std::size_t> cursor(last - first, 0);
    while (true) {
        std::uint32_t best_row = ~0u;
        for (std::size_t s = first; s < last; ++s) {
            const auto &st = streams[s];
            const std::size_t c = cursor[s - first];
            if (c < st.size())
                best_row = std::min(best_row, st[c].first);
        }
        if (best_row == ~0u)
            break;
        float acc = 0.0f;
        unsigned contributors = 0;
        for (std::size_t s = first; s < last; ++s) {
            auto &c = cursor[s - first];
            if (c < streams[s].size() && streams[s][c].first == best_row) {
                acc += streams[s][c].second;
                ++c;
                ++contributors;
            }
        }
        reduces += contributors - 1;
        out.emplace_back(best_row, acc);
    }
    return out;
}

} // namespace

DenseVector
FafnirSpmv::multiply(const LilMatrix &matrix, const DenseVector &x,
                     Tick start, SpmvTiming &timing)
{
    FAFNIR_ASSERT(x.size() == matrix.cols(), "operand size mismatch");
    const unsigned num_ranks = memory_.geometry().totalRanks();
    const unsigned entry_bytes = config_.valueBytes + config_.indexBytes;
    const Cycles tree_fill = 8; // pipeline fill of the reduction levels

    timing = SpmvTiming{};
    timing.issued = start;
    timing.plan = planSpmv(matrix.cols(), config_.vectorSize);
    const bool will_merge = timing.plan.mergeIterations() > 0;

    // Bin the non-zeros by multiply round in one row-major pass, so each
    // round streams its chunk without rescanning the matrix.
    const std::uint64_t rounds0 = timing.plan.roundsPerIteration[0];
    struct BinEntry
    {
        std::uint32_t row;
        std::uint32_t col;
        float value;
    };
    std::vector<std::vector<BinEntry>> bins(rounds0);
    for (std::uint32_t r = 0; r < matrix.rows(); ++r)
        for (const auto &[col, value] : matrix.rowList(r))
            bins[col / config_.vectorSize].push_back({r, col, value});

    // --- Iteration 0: multiply, one column chunk per round. -------------
    std::vector<Stream> streams;
    streams.reserve(rounds0);
    Tick t = start;
    for (std::uint64_t round = 0; round < rounds0; ++round) {
        Stream stream;
        std::vector<std::uint64_t> rank_nnz(num_ranks, 0);
        const std::size_t chunk_nnz = bins[round].size();
        for (const BinEntry &e : bins[round]) {
            ++rank_nnz[e.row % num_ranks];
            ++timing.multiplies;
            const float product = e.value * x[e.col];
            if (!stream.empty() && stream.back().first == e.row) {
                stream.back().second += product;
                ++timing.reduces;
            } else {
                stream.emplace_back(e.row, product);
            }
        }
        bins[round].clear();
        bins[round].shrink_to_fit();
        if (chunk_nnz == 0)
            continue;

        // Ranks stream their rows of the chunk in parallel (values and
        // indices both travel: "stream data and indices").
        Tick stream_done = t;
        for (unsigned rank = 0; rank < num_ranks; ++rank) {
            if (rank_nnz[rank] == 0)
                continue;
            const std::uint64_t bytes = rank_nnz[rank] * entry_bytes;
            timing.streamedBytes += bytes;
            stream_done = std::max(
                stream_done, memory_.streamFromRank(rank, bytes, t,
                                                    dram::Destination::Ndp));
        }
        // The tree consumes at reducesPerCycle non-zeros per cycle,
        // overlapped with the stream.
        const Tick compute_done =
            t + (divCeil(chunk_nnz, config_.reducesPerCycle) + tree_fill) *
                    pePeriod_;
        Tick round_done = std::max(stream_done, compute_done);

        // Spill the partial stream when merge iterations follow.
        if (will_merge) {
            const std::uint64_t out_bytes = stream.size() * entry_bytes;
            timing.intermediateEntries += stream.size();
            Tick write_done = round_done;
            for (unsigned rank = 0; rank < num_ranks; ++rank) {
                write_done = std::max(
                    write_done,
                    memory_.streamToRank(rank, out_bytes / num_ranks + 1,
                                         round_done));
            }
            round_done = write_done;
        }
        t = round_done;
        streams.push_back(std::move(stream));
    }
    timing.iterationComplete.push_back(t);

    // --- Merge iterations: fold streams, vectorSize-way per round. ------
    for (unsigned iter = 1; iter < timing.plan.iterations(); ++iter) {
        std::vector<Stream> next;
        const std::size_t ways = config_.vectorSize;
        for (std::size_t first = 0; first < streams.size(); first += ways) {
            const std::size_t last =
                std::min(streams.size(), first + ways);

            std::uint64_t in_entries = 0;
            for (std::size_t s = first; s < last; ++s)
                in_entries += streams[s].size();

            Stream merged =
                mergeStreams(streams, first, last, timing.reduces);

            // Read the group's intermediate data back through the tree;
            // the merge path sustains only a fraction of the stream rate.
            const auto in_bytes = static_cast<std::uint64_t>(
                static_cast<double>(in_entries * entry_bytes) /
                config_.mergeStreamRate);
            Tick read_done = t;
            for (unsigned rank = 0; rank < num_ranks; ++rank) {
                read_done = std::max(
                    read_done,
                    memory_.streamFromRank(rank,
                                           in_bytes / num_ranks + 1, t,
                                           dram::Destination::Ndp));
            }
            timing.streamedBytes += in_entries * entry_bytes;
            const Tick compute_done =
                t + (divCeil(in_entries, config_.reducesPerCycle) +
                     tree_fill) *
                        pePeriod_;
            Tick round_done = std::max(read_done, compute_done);

            const bool more = iter + 1 < timing.plan.iterations();
            if (more) {
                const std::uint64_t out_bytes =
                    merged.size() * entry_bytes;
                timing.intermediateEntries += merged.size();
                Tick write_done = round_done;
                for (unsigned rank = 0; rank < num_ranks; ++rank) {
                    write_done = std::max(
                        write_done,
                        memory_.streamToRank(rank,
                                             out_bytes / num_ranks + 1,
                                             round_done));
                }
                round_done = write_done;
            }
            t = round_done;
            next.push_back(std::move(merged));
        }
        streams = std::move(next);
        timing.iterationComplete.push_back(t);
    }

    timing.complete = t;

    // Materialize the dense result.
    DenseVector y(matrix.rows(), 0.0f);
    FAFNIR_ASSERT(streams.size() <= 1, "merge plan did not converge");
    if (!streams.empty())
        for (const auto &[row, value] : streams.front())
            y[row] = value;
    return y;
}

} // namespace fafnir::sparse
