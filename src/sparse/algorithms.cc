/**
 * @file
 * Implementation of the iterative sparse kernels.
 */

#include "algorithms.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "embedding/reduce_kernels.hh"

namespace fafnir::sparse
{

CsrMatrix
columnNormalize(const CsrMatrix &matrix)
{
    std::vector<float> column_sum(matrix.cols(), 0.0f);
    for (std::size_t k = 0; k < matrix.nnz(); ++k)
        column_sum[matrix.colIdx()[k]] += matrix.values()[k];

    std::vector<Triplet> triplets;
    triplets.reserve(matrix.nnz());
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
        for (std::uint32_t k = matrix.rowPtr()[r];
             k < matrix.rowPtr()[r + 1]; ++k) {
            const std::uint32_t c = matrix.colIdx()[k];
            FAFNIR_ASSERT(column_sum[c] != 0.0f, "empty column ", c);
            triplets.push_back(
                {r, c, matrix.values()[k] / column_sum[c]});
        }
    }
    return CsrMatrix::fromTriplets(matrix.rows(), matrix.cols(),
                                   std::move(triplets));
}

IterativeResult
pageRank(FafnirSpmv &engine, const LilMatrix &adjacency, double damping,
         const IterativeConfig &config)
{
    FAFNIR_ASSERT(adjacency.rows() == adjacency.cols(),
                  "PageRank needs a square adjacency");
    const std::uint32_t n = adjacency.rows();
    const auto base =
        static_cast<float>((1.0 - damping) / static_cast<double>(n));

    IterativeResult result;
    result.solution.assign(n, 1.0f / static_cast<float>(n));
    Tick now = 0;
    for (unsigned iter = 0; iter < config.maxIterations; ++iter) {
        SpmvTiming timing;
        const DenseVector contrib =
            engine.multiply(adjacency, result.solution, now, timing);
        now = timing.complete;
        result.multiplies += timing.multiplies;

        // Element-wise damped update (vectorizable), then the residual
        // in the original sequential association.
        DenseVector updated(n);
        for (std::uint32_t i = 0; i < n; ++i)
            updated[i] = base + static_cast<float>(damping) * contrib[i];
        const double delta = embedding::absDeltaSum(
            updated.data(), result.solution.data(), n);
        result.solution = std::move(updated);
        result.iterations = iter + 1;
        result.residual = delta;
        if (delta < config.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.simulatedTicks = now;
    return result;
}

IterativeResult
jacobiSolve(FafnirSpmv &engine, const CsrMatrix &a, const DenseVector &b,
            const IterativeConfig &config)
{
    FAFNIR_ASSERT(a.rows() == a.cols(), "Jacobi needs a square system");
    FAFNIR_ASSERT(b.size() == a.rows(), "rhs size mismatch");
    const std::uint32_t n = a.rows();

    // Split A = D + R.
    std::vector<float> diag(n, 0.0f);
    std::vector<Triplet> off;
    off.reserve(a.nnz());
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
             ++k) {
            if (a.colIdx()[k] == r)
                diag[r] += a.values()[k];
            else
                off.push_back({r, a.colIdx()[k], a.values()[k]});
        }
    }
    for (std::uint32_t r = 0; r < n; ++r)
        FAFNIR_ASSERT(diag[r] != 0.0f, "zero diagonal at row ", r);
    const LilMatrix r_lil =
        LilMatrix::fromCsr(CsrMatrix::fromTriplets(n, n, std::move(off)));

    IterativeResult result;
    result.solution.assign(n, 0.0f);
    Tick now = 0;
    for (unsigned iter = 0; iter < config.maxIterations; ++iter) {
        SpmvTiming timing;
        const DenseVector rx =
            engine.multiply(r_lil, result.solution, now, timing);
        now = timing.complete;
        result.multiplies += timing.multiplies;

        DenseVector updated(n);
        for (std::uint32_t i = 0; i < n; ++i)
            updated[i] = (b[i] - rx[i]) / diag[i];
        const double delta = embedding::absDeltaSum(
            updated.data(), result.solution.data(), n);
        result.solution = std::move(updated);
        result.iterations = iter + 1;
        result.residual = delta / n;
        if (result.residual < config.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.simulatedTicks = now;
    return result;
}

IterativeResult
powerIteration(FafnirSpmv &engine, const LilMatrix &a,
               const IterativeConfig &config)
{
    FAFNIR_ASSERT(a.rows() == a.cols(), "power iteration needs square A");
    const std::uint32_t n = a.rows();

    IterativeResult result;
    result.solution.assign(n, 1.0f);
    Tick now = 0;
    for (unsigned iter = 0; iter < config.maxIterations; ++iter) {
        SpmvTiming timing;
        DenseVector next = engine.multiply(a, result.solution, now,
                                           timing);
        now = timing.complete;
        result.multiplies += timing.multiplies;

        float norm = 0.0f;
        for (float v : next)
            norm = std::max(norm, std::fabs(v));
        FAFNIR_ASSERT(norm > 0.0f, "iterate collapsed to zero");
        for (std::uint32_t i = 0; i < n; ++i)
            next[i] /= norm;
        const double delta = embedding::absDeltaSum(
            next.data(), result.solution.data(), n);
        result.solution = std::move(next);
        result.iterations = iter + 1;
        result.residual = delta / n;
        if (result.residual < config.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.simulatedTicks = now;
    return result;
}

} // namespace fafnir::sparse
