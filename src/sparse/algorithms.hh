/**
 * @file
 * Iterative sparse algorithms on the Fafnir SpMV engine.
 *
 * The paper positions Fafnir as a generic sparse-gathering substrate for
 * graph analytics and scientific computing (Sections IV-D and VIII name
 * graph algorithms, matrix inversion, and differential-equation
 * solvers). These kernels are the library form of that claim: each is an
 * SpMV-dominated iteration that charges all its matrix traffic to the
 * near-memory engine and reports the simulated time alongside the
 * numeric result.
 */

#ifndef FAFNIR_SPARSE_ALGORITHMS_HH
#define FAFNIR_SPARSE_ALGORITHMS_HH

#include <cstdint>

#include "common/types.hh"
#include "sparse/fafnir_spmv.hh"
#include "sparse/matrix.hh"

namespace fafnir::sparse
{

/** Outcome of an iterative solve. */
struct IterativeResult
{
    DenseVector solution;
    unsigned iterations = 0;
    bool converged = false;
    /** Final convergence metric (algorithm-specific). */
    double residual = 0.0;
    /** Simulated near-memory time across all iterations. */
    Tick simulatedTicks = 0;
    /** Total near-memory multiply-accumulates. */
    std::uint64_t multiplies = 0;
};

/** Parameters shared by the iterative kernels. */
struct IterativeConfig
{
    unsigned maxIterations = 100;
    double tolerance = 1e-4;
};

/**
 * PageRank by power iteration: rank' = (1-d)/n + d * A_norm * rank.
 * @param adjacency column-normalized adjacency (columns sum to 1).
 */
IterativeResult pageRank(FafnirSpmv &engine, const LilMatrix &adjacency,
                         double damping = 0.85,
                         const IterativeConfig &config = {});

/**
 * Jacobi iteration for A x = b; A must be diagonally dominant. The
 * off-diagonal SpMV runs near memory each step.
 */
IterativeResult jacobiSolve(FafnirSpmv &engine, const CsrMatrix &a,
                            const DenseVector &b,
                            const IterativeConfig &config = {});

/**
 * Power iteration for the dominant eigenvector of A (normalized to unit
 * infinity-norm); residual is the eigenvector update delta.
 */
IterativeResult powerIteration(FafnirSpmv &engine, const LilMatrix &a,
                               const IterativeConfig &config = {});

/** Column-normalize a matrix so each non-empty column sums to 1. */
CsrMatrix columnNormalize(const CsrMatrix &matrix);

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_ALGORITHMS_HH
