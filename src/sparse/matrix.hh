/**
 * @file
 * Sparse-matrix formats: CSR (the reference format) and LIL (the
 * list-of-lists format the paper streams through the tree).
 *
 * LIL compresses non-zeros along one dimension only — each row is a list
 * of (column, value) pairs — which makes splitting a matrix through its
 * non-compressed (column) dimension trivial: exactly the property
 * Section IV-D relies on to stream column chunks through Fafnir in
 * rounds.
 */

#ifndef FAFNIR_SPARSE_MATRIX_HH
#define FAFNIR_SPARSE_MATRIX_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace fafnir::sparse
{

/** A single non-zero element. */
struct Triplet
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    float value = 0.0f;
};

/** Dense vector type used by SpMV. */
using DenseVector = std::vector<float>;

/** Compressed sparse row matrix. */
class CsrMatrix
{
  public:
    CsrMatrix(std::uint32_t rows, std::uint32_t cols,
              std::vector<std::uint32_t> row_ptr,
              std::vector<std::uint32_t> col_idx,
              std::vector<float> values);

    /** Build from unordered triplets (duplicates summed). */
    static CsrMatrix fromTriplets(std::uint32_t rows, std::uint32_t cols,
                                  std::vector<Triplet> triplets);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    const std::vector<std::uint32_t> &rowPtr() const { return rowPtr_; }
    const std::vector<std::uint32_t> &colIdx() const { return colIdx_; }
    const std::vector<float> &values() const { return values_; }

    /** Reference y = A * x. */
    DenseVector multiply(const DenseVector &x) const;

    /** A^T (rows and columns swapped). */
    CsrMatrix transpose() const;

    /** Average non-zeros per row. */
    double
    density() const
    {
        return rows_ == 0 ? 0.0
                          : static_cast<double>(nnz()) /
                  (static_cast<double>(rows_) * cols_);
    }

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::vector<std::uint32_t> rowPtr_;
    std::vector<std::uint32_t> colIdx_;
    std::vector<float> values_;
};

/** List-of-lists matrix: per-row (column, value) pairs, column-sorted. */
class LilMatrix
{
  public:
    using Entry = std::pair<std::uint32_t, float>;

    LilMatrix(std::uint32_t rows, std::uint32_t cols)
        : rows_(rows), cols_(cols), lists_(rows)
    {}

    static LilMatrix fromCsr(const CsrMatrix &csr);
    CsrMatrix toCsr() const;

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const;

    const std::vector<Entry> &rowList(std::uint32_t row) const
    {
        FAFNIR_ASSERT(row < rows_, "row out of range");
        return lists_[row];
    }

    /** Append an entry; columns must arrive in increasing order per row. */
    void push(std::uint32_t row, std::uint32_t col, float value);

    /**
     * Non-zeros with columns in [col_begin, col_end) — one streaming round
     * of the Figure 8 schedule. Entries are visited row-major; returns the
     * count visited.
     */
    template <typename Fn>
    std::size_t
    forEachInColumnRange(std::uint32_t col_begin, std::uint32_t col_end,
                         Fn &&fn) const
    {
        std::size_t count = 0;
        for (std::uint32_t r = 0; r < rows_; ++r) {
            const auto &list = lists_[r];
            // Row lists are column-sorted; binary-search the range.
            auto first = std::lower_bound(
                list.begin(), list.end(), col_begin,
                [](const Entry &e, std::uint32_t c) { return e.first < c; });
            for (auto it = first; it != list.end() && it->first < col_end;
                 ++it) {
                fn(r, it->first, it->second);
                ++count;
            }
        }
        return count;
    }

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::vector<std::vector<Entry>> lists_;
};

/** Element-wise comparison with tolerance. */
bool denseEqual(const DenseVector &a, const DenseVector &b,
                float tolerance = 1e-2f);

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_MATRIX_HH
