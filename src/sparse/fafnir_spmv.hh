/**
 * @file
 * SpMV on the Fafnir hardware (Section IV-D).
 *
 * The matrix is stored row-distributed over the memory ranks in LIL form;
 * both values and column indices stream through the tree ("for SpMV, we
 * stream both data and indices"). Leaf PEs multiply each non-zero by the
 * buffered operand element (iteration 0 only) and the tree accumulates
 * per-row partial sums; each multiply round emits one row-sorted partial
 * stream. Merge iterations re-stream those intermediate streams through
 * the same tree with multiplication skipped.
 *
 * The engine is functional AND timed: it computes the exact result vector
 * (validated against CSR SpMV) while charging every streamed byte to the
 * DRAM model and every reduce to the tree's throughput.
 */

#ifndef FAFNIR_SPARSE_FAFNIR_SPMV_HH
#define FAFNIR_SPARSE_FAFNIR_SPMV_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/memsystem.hh"
#include "fafnir/pe.hh"
#include "sparse/matrix.hh"
#include "sparse/planner.hh"

namespace fafnir::sparse
{

/** Parameters of the Fafnir SpMV engine. */
struct FafnirSpmvConfig
{
    /** Columns that fit through the tree per round (paper: 2048). */
    unsigned vectorSize = 2048;
    /** PE clock. */
    double peClockMhz = 200.0;
    /**
     * Non-zeros the tree folds per PE cycle. The Figure 7c vectorization
     * is what makes this large: each of the 16 leaf PEs processes a
     * vector of independent elements per cycle (16 lanes), so the tree
     * keeps up with the aggregate stream rate of the ranks.
     */
    unsigned reducesPerCycle = 256;
    unsigned valueBytes = 4;
    unsigned indexBytes = 4;
    /**
     * Effective fraction of the stream rate sustained during merge
     * iterations. Merging re-streams unsorted intermediate runs through
     * the general-purpose tree (header comparisons, no multiply-side
     * pipelining), which the paper concedes is where the specialized
     * Two-Step merge core wins.
     */
    double mergeStreamRate = 0.5;
};

/** Timing and work counters of one SpMV run. */
struct SpmvTiming
{
    Tick issued = 0;
    Tick complete = 0;
    /** Per-iteration completion ticks. */
    std::vector<Tick> iterationComplete;
    std::uint64_t multiplies = 0;
    std::uint64_t reduces = 0;
    std::uint64_t streamedBytes = 0;
    std::uint64_t intermediateEntries = 0;
    SpmvPlan plan;

    Tick totalTime() const { return complete - issued; }
};

/** Fafnir SpMV engine. */
class FafnirSpmv
{
  public:
    FafnirSpmv(dram::MemorySystem &memory,
               const FafnirSpmvConfig &config = {})
        : memory_(memory), config_(config),
          pePeriod_(periodFromMhz(config.peClockMhz))
    {}

    /**
     * Compute y = A * x, charging time to the DRAM model starting at
     * @p start.
     */
    DenseVector multiply(const LilMatrix &matrix, const DenseVector &x,
                         Tick start, SpmvTiming &timing);

    const FafnirSpmvConfig &config() const { return config_; }

  private:
    dram::MemorySystem &memory_;
    FafnirSpmvConfig config_;
    Tick pePeriod_;
};

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_FAFNIR_SPMV_HH
