/**
 * @file
 * Implementation of level-scheduled SpTRSV.
 */

#include "sptrsv.hh"

#include <algorithm>
#include <cmath>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fafnir::sparse
{

LevelSchedule
levelSchedule(const CsrMatrix &l)
{
    FAFNIR_ASSERT(l.rows() == l.cols(), "SpTRSV needs a square matrix");
    LevelSchedule schedule;
    schedule.rowLevel.assign(l.rows(), 0);

    std::uint32_t max_level = 0;
    for (std::uint32_t r = 0; r < l.rows(); ++r) {
        std::uint32_t level = 0;
        for (std::uint32_t k = l.rowPtr()[r]; k < l.rowPtr()[r + 1];
             ++k) {
            const std::uint32_t c = l.colIdx()[k];
            FAFNIR_ASSERT(c <= r, "matrix is not lower triangular (entry ",
                          r, ",", c, ")");
            if (c < r)
                level = std::max(level, schedule.rowLevel[c] + 1);
        }
        schedule.rowLevel[r] = level;
        max_level = std::max(max_level, level);
    }

    schedule.levels.resize(max_level + 1);
    for (std::uint32_t r = 0; r < l.rows(); ++r)
        schedule.levels[schedule.rowLevel[r]].push_back(r);
    return schedule;
}

DenseVector
forwardSubstitute(const CsrMatrix &l, const DenseVector &b)
{
    FAFNIR_ASSERT(b.size() == l.rows(), "rhs size mismatch");
    DenseVector x(l.rows(), 0.0f);
    for (std::uint32_t r = 0; r < l.rows(); ++r) {
        float acc = b[r];
        float diag = 0.0f;
        for (std::uint32_t k = l.rowPtr()[r]; k < l.rowPtr()[r + 1];
             ++k) {
            const std::uint32_t c = l.colIdx()[k];
            if (c == r)
                diag = l.values()[k];
            else
                acc -= l.values()[k] * x[c];
        }
        FAFNIR_ASSERT(diag != 0.0f, "zero diagonal at row ", r);
        x[r] = acc / diag;
    }
    return x;
}

DenseVector
sptrsvSolve(dram::MemorySystem &memory, const CsrMatrix &l,
            const DenseVector &b, Tick start, SptrsvTiming &timing,
            const SptrsvConfig &config)
{
    const LevelSchedule schedule = levelSchedule(l);
    const unsigned num_ranks = memory.geometry().totalRanks();
    const unsigned entry_bytes = config.valueBytes + config.indexBytes;
    const Tick pe_period = periodFromMhz(config.peClockMhz);

    timing = SptrsvTiming{};
    timing.issued = start;
    timing.levels = schedule.depth();

    DenseVector x(l.rows(), 0.0f);
    Tick t = start;
    for (const auto &rows : schedule.levels) {
        // One gather-reduce round: each row of the level streams its
        // off-diagonals (value + column index) from its home rank, the
        // leaf multipliers form l[r][c] * x[c], and the tree reduces
        // per row — independent rows, exactly the SpMV dataflow.
        std::vector<std::uint64_t> rank_bytes(num_ranks, 0);
        std::uint64_t level_nnz = 0;
        for (std::uint32_t r : rows) {
            float acc = b[r];
            float diag = 0.0f;
            for (std::uint32_t k = l.rowPtr()[r]; k < l.rowPtr()[r + 1];
                 ++k) {
                const std::uint32_t c = l.colIdx()[k];
                if (c == r) {
                    diag = l.values()[k];
                } else {
                    acc -= l.values()[k] * x[c];
                    ++timing.multiplies;
                    ++level_nnz;
                    rank_bytes[r % num_ranks] += entry_bytes;
                }
            }
            x[r] = acc / diag;
        }

        Tick stream_done = t;
        for (unsigned rank = 0; rank < num_ranks; ++rank) {
            if (rank_bytes[rank] == 0)
                continue;
            timing.streamedBytes += rank_bytes[rank];
            stream_done = std::max(
                stream_done,
                memory.streamFromRank(rank, rank_bytes[rank], t,
                                      dram::Destination::Ndp));
        }
        const Tick compute_done =
            t + (divCeil(std::max<std::uint64_t>(level_nnz, 1),
                         config.reducesPerCycle) +
                 8) *
                    pe_period;
        // Results feed back as the next level's operand via the host.
        t = std::max(stream_done, compute_done) + config.levelTurnaround;
    }
    timing.complete = t;
    return x;
}

CsrMatrix
makeLowerTriangular(std::uint32_t n, double off_diag_per_row,
                    std::uint32_t max_reach, Rng &rng)
{
    std::vector<Triplet> triplets;
    triplets.reserve(
        static_cast<std::size_t>(n * (off_diag_per_row + 1)));
    for (std::uint32_t r = 0; r < n; ++r) {
        triplets.push_back(
            {r, r, 2.0f + static_cast<float>(rng.nextDouble())});
        if (r == 0)
            continue;
        const auto count = static_cast<unsigned>(
            off_diag_per_row +
            (rng.nextDouble() <
                     off_diag_per_row - std::floor(off_diag_per_row)
                 ? 1
                 : 0));
        for (unsigned k = 0; k < count; ++k) {
            const std::uint32_t reach =
                1 + static_cast<std::uint32_t>(
                        rng.nextBelow(std::min(max_reach, r)));
            triplets.push_back(
                {r, r - reach,
                 0.1f + 0.2f * static_cast<float>(rng.nextDouble())});
        }
    }
    return CsrMatrix::fromTriplets(n, n, std::move(triplets));
}

} // namespace fafnir::sparse
