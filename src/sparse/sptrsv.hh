/**
 * @file
 * Sparse triangular solve (SpTRSV) on the Fafnir tree.
 *
 * Section VIII names matrix inversion and differential-equation solvers
 * as sparse-gathering applications whose "particular patterns of
 * computation necessitate some additional connections in the structure
 * of a tree", left as future work. SpTRSV is the canonical such pattern:
 * solving L x = b (L lower triangular) has row-to-row dependencies, so
 * it cannot stream as one SpMV. The standard NDP-friendly answer is
 * level scheduling: rows are partitioned into dependency levels
 * (row r's level = 1 + max level of the rows its off-diagonals
 * reference); all rows of a level are independent and execute as one
 * gather-reduce round through the unmodified tree, with the "additional
 * connection" realized as the host feeding level k's results back as
 * level k+1's operand — exactly the merge-iteration loopback Fafnir
 * already has for SpMV.
 */

#ifndef FAFNIR_SPARSE_SPTRSV_HH
#define FAFNIR_SPARSE_SPTRSV_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "dram/memsystem.hh"
#include "sparse/matrix.hh"

namespace fafnir::sparse
{

/** Dependency levels of a lower-triangular matrix. */
struct LevelSchedule
{
    /** level[r] = dependency depth of row r (0 = no dependencies). */
    std::vector<std::uint32_t> rowLevel;
    /** Rows grouped by level, ascending. */
    std::vector<std::vector<std::uint32_t>> levels;

    std::size_t depth() const { return levels.size(); }

    /** Mean rows per level — the exploitable parallelism. */
    double
    parallelism() const
    {
        return levels.empty()
            ? 0.0
            : static_cast<double>(rowLevel.size()) /
                  static_cast<double>(levels.size());
    }
};

/** Compute the level schedule of lower-triangular @p l. */
LevelSchedule levelSchedule(const CsrMatrix &l);

/** Timing of one SpTRSV run. */
struct SptrsvTiming
{
    Tick issued = 0;
    Tick complete = 0;
    std::size_t levels = 0;
    std::uint64_t multiplies = 0;
    std::uint64_t streamedBytes = 0;

    Tick totalTime() const { return complete - issued; }
};

/** Configuration (shares the SpMV engine's throughput parameters). */
struct SptrsvConfig
{
    double peClockMhz = 200.0;
    unsigned reducesPerCycle = 256;
    unsigned valueBytes = 4;
    unsigned indexBytes = 4;
    /** Host turnaround feeding a level's results back as operands. */
    Tick levelTurnaround = 200 * kTicksPerNs;
};

/**
 * Solve L x = b by level-scheduled gather-reduce rounds on the tree.
 * L must be lower triangular with a non-zero diagonal. Functional and
 * timed: the result is exact forward substitution; every level's
 * off-diagonal gather is charged to the DRAM model.
 */
DenseVector sptrsvSolve(dram::MemorySystem &memory, const CsrMatrix &l,
                        const DenseVector &b, Tick start,
                        SptrsvTiming &timing,
                        const SptrsvConfig &config = {});

/** Reference forward substitution. */
DenseVector forwardSubstitute(const CsrMatrix &l, const DenseVector &b);

/** Lower-triangular generator with controllable dependency depth. */
CsrMatrix makeLowerTriangular(std::uint32_t n, double off_diag_per_row,
                              std::uint32_t max_reach, Rng &rng);

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_SPTRSV_HH
