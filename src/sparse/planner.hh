/**
 * @file
 * Iteration/round planner for SpMV on Fafnir (Figures 8 and 9).
 *
 * Only `vectorSize` columns of the matrix fit through the tree at a time,
 * so iteration 0 multiplies the matrix chunk by chunk in
 * ceil(cols / vectorSize) rounds, each producing one row-sorted partial
 * result stream. Every later iteration merges up to vectorSize streams
 * per round until one stream remains. Figure 9 plots iterations, rounds
 * per iteration, and total merges against the column count; the paper's
 * configuration uses vectorSize = 2048 and notes that even 20M-column
 * matrices need no more than two merge iterations.
 */

#ifndef FAFNIR_SPARSE_PLANNER_HH
#define FAFNIR_SPARSE_PLANNER_HH

#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fafnir::sparse
{

/** The Figure 8 schedule for one matrix. */
struct SpmvPlan
{
    std::uint64_t columns = 0;
    unsigned vectorSize = 2048;
    /** rounds[0] = multiply rounds; rounds[i>0] = merge rounds. */
    std::vector<std::uint64_t> roundsPerIteration;

    /** Total iterations including iteration 0. */
    unsigned
    iterations() const
    {
        return static_cast<unsigned>(roundsPerIteration.size());
    }

    /** Merge iterations (iterations beyond the multiply). */
    unsigned mergeIterations() const { return iterations() - 1; }

    /** Total merge rounds across all merge iterations. */
    std::uint64_t
    totalMerges() const
    {
        std::uint64_t total = 0;
        for (std::size_t i = 1; i < roundsPerIteration.size(); ++i)
            total += roundsPerIteration[i];
        return total;
    }
};

/** Compute the schedule for a matrix with @p columns columns. */
inline SpmvPlan
planSpmv(std::uint64_t columns, unsigned vector_size = 2048)
{
    FAFNIR_ASSERT(columns > 0, "empty matrix");
    FAFNIR_ASSERT(vector_size > 1, "vector size must exceed 1");

    SpmvPlan plan;
    plan.columns = columns;
    plan.vectorSize = vector_size;

    std::uint64_t streams = divCeil(columns, vector_size);
    plan.roundsPerIteration.push_back(streams);
    while (streams > 1) {
        streams = divCeil(streams, vector_size);
        plan.roundsPerIteration.push_back(streams);
    }
    return plan;
}

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_PLANNER_HH
