/**
 * @file
 * Additional sparse formats: COO and CSC.
 *
 * LIL is what streams through the tree (Section IV-D) and CSR is the
 * reference; COO is the interchange format matrices usually arrive in
 * (SuiteSparse .mtx is a triplet list) and CSC gives column-major access
 * — which is also the natural way to build one multiply-round's working
 * set. Conversions round-trip losslessly and every format multiplies
 * identically.
 */

#ifndef FAFNIR_SPARSE_FORMATS_HH
#define FAFNIR_SPARSE_FORMATS_HH

#include <iosfwd>

#include "sparse/matrix.hh"

namespace fafnir::sparse
{

/** Coordinate (triplet) format. */
class CooMatrix
{
  public:
    CooMatrix(std::uint32_t rows, std::uint32_t cols,
              std::vector<Triplet> triplets)
        : rows_(rows), cols_(cols), triplets_(std::move(triplets))
    {}

    static CooMatrix fromCsr(const CsrMatrix &csr);
    CsrMatrix toCsr() const;

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return triplets_.size(); }
    const std::vector<Triplet> &triplets() const { return triplets_; }

    /** Reference y = A * x without conversion. */
    DenseVector multiply(const DenseVector &x) const;

    /**
     * Parse a MatrixMarket-style coordinate stream:
     *   rows cols nnz
     *   row col value      (1-based indices)
     * Lines beginning with '%' are comments.
     */
    static CooMatrix parse(std::istream &is);
    void write(std::ostream &os) const;

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::vector<Triplet> triplets_;
};

/** Compressed sparse column matrix. */
class CscMatrix
{
  public:
    CscMatrix(std::uint32_t rows, std::uint32_t cols,
              std::vector<std::uint32_t> col_ptr,
              std::vector<std::uint32_t> row_idx,
              std::vector<float> values);

    static CscMatrix fromCsr(const CsrMatrix &csr);
    CsrMatrix toCsr() const;

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    const std::vector<std::uint32_t> &colPtr() const { return colPtr_; }
    const std::vector<std::uint32_t> &rowIdx() const { return rowIdx_; }
    const std::vector<float> &values() const { return values_; }

    /** Reference y = A * x (scatter form). */
    DenseVector multiply(const DenseVector &x) const;

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::vector<std::uint32_t> colPtr_;
    std::vector<std::uint32_t> rowIdx_;
    std::vector<float> values_;
};

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_FORMATS_HH
