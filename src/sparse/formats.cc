/**
 * @file
 * Implementation of the COO and CSC formats.
 */

#include "formats.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace fafnir::sparse
{

CooMatrix
CooMatrix::fromCsr(const CsrMatrix &csr)
{
    std::vector<Triplet> triplets;
    triplets.reserve(csr.nnz());
    for (std::uint32_t r = 0; r < csr.rows(); ++r)
        for (std::uint32_t k = csr.rowPtr()[r]; k < csr.rowPtr()[r + 1];
             ++k)
            triplets.push_back({r, csr.colIdx()[k], csr.values()[k]});
    return CooMatrix(csr.rows(), csr.cols(), std::move(triplets));
}

CsrMatrix
CooMatrix::toCsr() const
{
    return CsrMatrix::fromTriplets(rows_, cols_, triplets_);
}

DenseVector
CooMatrix::multiply(const DenseVector &x) const
{
    FAFNIR_ASSERT(x.size() == cols_, "operand size mismatch");
    DenseVector y(rows_, 0.0f);
    for (const Triplet &t : triplets_)
        y[t.row] += t.value * x[t.col];
    return y;
}

CooMatrix
CooMatrix::parse(std::istream &is)
{
    std::string line;
    // Skip comments.
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream header(line);
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::size_t nnz = 0;
    FAFNIR_ASSERT(static_cast<bool>(header >> rows >> cols >> nnz),
                  "malformed coordinate header: '", line, "'");

    std::vector<Triplet> triplets;
    triplets.reserve(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
        std::uint32_t r = 0;
        std::uint32_t c = 0;
        float v = 0.0f;
        FAFNIR_ASSERT(static_cast<bool>(is >> r >> c >> v),
                      "truncated coordinate stream at entry ", i);
        FAFNIR_ASSERT(r >= 1 && c >= 1, "indices are 1-based");
        triplets.push_back({r - 1, c - 1, v});
    }
    return CooMatrix(rows, cols, std::move(triplets));
}

void
CooMatrix::write(std::ostream &os) const
{
    os << "%% fafnir coordinate matrix\n"
       << rows_ << ' ' << cols_ << ' ' << triplets_.size() << '\n';
    for (const Triplet &t : triplets_)
        os << t.row + 1 << ' ' << t.col + 1 << ' ' << t.value << '\n';
}

CscMatrix::CscMatrix(std::uint32_t rows, std::uint32_t cols,
                     std::vector<std::uint32_t> col_ptr,
                     std::vector<std::uint32_t> row_idx,
                     std::vector<float> values)
    : rows_(rows), cols_(cols), colPtr_(std::move(col_ptr)),
      rowIdx_(std::move(row_idx)), values_(std::move(values))
{
    FAFNIR_ASSERT(colPtr_.size() == cols_ + 1, "colPtr size mismatch");
    FAFNIR_ASSERT(rowIdx_.size() == values_.size(),
                  "index/value mismatch");
    FAFNIR_ASSERT(colPtr_.back() == values_.size(),
                  "colPtr tail mismatch");
}

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    std::vector<std::uint32_t> col_ptr(csr.cols() + 1, 0);
    for (std::size_t k = 0; k < csr.nnz(); ++k)
        ++col_ptr[csr.colIdx()[k] + 1];
    for (std::uint32_t c = 0; c < csr.cols(); ++c)
        col_ptr[c + 1] += col_ptr[c];

    std::vector<std::uint32_t> row_idx(csr.nnz());
    std::vector<float> values(csr.nnz());
    std::vector<std::uint32_t> cursor(col_ptr.begin(),
                                      col_ptr.end() - 1);
    for (std::uint32_t r = 0; r < csr.rows(); ++r) {
        for (std::uint32_t k = csr.rowPtr()[r]; k < csr.rowPtr()[r + 1];
             ++k) {
            const std::uint32_t c = csr.colIdx()[k];
            row_idx[cursor[c]] = r;
            values[cursor[c]] = csr.values()[k];
            ++cursor[c];
        }
    }
    return CscMatrix(csr.rows(), csr.cols(), std::move(col_ptr),
                     std::move(row_idx), std::move(values));
}

CsrMatrix
CscMatrix::toCsr() const
{
    std::vector<Triplet> triplets;
    triplets.reserve(nnz());
    for (std::uint32_t c = 0; c < cols_; ++c)
        for (std::uint32_t k = colPtr_[c]; k < colPtr_[c + 1]; ++k)
            triplets.push_back({rowIdx_[k], c, values_[k]});
    return CsrMatrix::fromTriplets(rows_, cols_, std::move(triplets));
}

DenseVector
CscMatrix::multiply(const DenseVector &x) const
{
    FAFNIR_ASSERT(x.size() == cols_, "operand size mismatch");
    DenseVector y(rows_, 0.0f);
    for (std::uint32_t c = 0; c < cols_; ++c) {
        const float xc = x[c];
        if (xc == 0.0f)
            continue;
        for (std::uint32_t k = colPtr_[c]; k < colPtr_[c + 1]; ++k)
            y[rowIdx_[k]] += values_[k] * xc;
    }
    return y;
}

} // namespace fafnir::sparse
