/**
 * @file
 * Implementation of the sparse-matrix formats.
 */

#include "matrix.hh"

#include <algorithm>
#include <cmath>

namespace fafnir::sparse
{

CsrMatrix::CsrMatrix(std::uint32_t rows, std::uint32_t cols,
                     std::vector<std::uint32_t> row_ptr,
                     std::vector<std::uint32_t> col_idx,
                     std::vector<float> values)
    : rows_(rows), cols_(cols), rowPtr_(std::move(row_ptr)),
      colIdx_(std::move(col_idx)), values_(std::move(values))
{
    FAFNIR_ASSERT(rowPtr_.size() == rows_ + 1, "rowPtr size mismatch");
    FAFNIR_ASSERT(colIdx_.size() == values_.size(), "index/value mismatch");
    FAFNIR_ASSERT(rowPtr_.back() == values_.size(), "rowPtr tail mismatch");
    for (std::uint32_t c : colIdx_)
        FAFNIR_ASSERT(c < cols_, "column ", c, " out of range");
}

CsrMatrix
CsrMatrix::fromTriplets(std::uint32_t rows, std::uint32_t cols,
                        std::vector<Triplet> triplets)
{
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    std::vector<std::uint32_t> row_ptr(rows + 1, 0);
    std::vector<std::uint32_t> col_idx;
    std::vector<float> values;
    col_idx.reserve(triplets.size());
    values.reserve(triplets.size());

    for (std::size_t i = 0; i < triplets.size();) {
        const Triplet &t = triplets[i];
        FAFNIR_ASSERT(t.row < rows && t.col < cols,
                      "triplet out of range (", t.row, ",", t.col, ")");
        float sum = 0.0f;
        std::size_t j = i;
        while (j < triplets.size() && triplets[j].row == t.row &&
               triplets[j].col == t.col) {
            sum += triplets[j].value;
            ++j;
        }
        col_idx.push_back(t.col);
        values.push_back(sum);
        ++row_ptr[t.row + 1];
        i = j;
    }
    for (std::uint32_t r = 0; r < rows; ++r)
        row_ptr[r + 1] += row_ptr[r];
    return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

DenseVector
CsrMatrix::multiply(const DenseVector &x) const
{
    FAFNIR_ASSERT(x.size() == cols_, "operand size ", x.size(),
                  " != cols ", cols_);
    DenseVector y(rows_, 0.0f);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        for (std::uint32_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            acc += values_[k] * x[colIdx_[k]];
        y[r] = acc;
    }
    return y;
}

CsrMatrix
CsrMatrix::transpose() const
{
    std::vector<Triplet> triplets;
    triplets.reserve(nnz());
    for (std::uint32_t r = 0; r < rows_; ++r)
        for (std::uint32_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            triplets.push_back({colIdx_[k], r, values_[k]});
    return fromTriplets(cols_, rows_, std::move(triplets));
}

LilMatrix
LilMatrix::fromCsr(const CsrMatrix &csr)
{
    LilMatrix lil(csr.rows(), csr.cols());
    for (std::uint32_t r = 0; r < csr.rows(); ++r)
        for (std::uint32_t k = csr.rowPtr()[r]; k < csr.rowPtr()[r + 1];
             ++k)
            lil.push(r, csr.colIdx()[k], csr.values()[k]);
    return lil;
}

CsrMatrix
LilMatrix::toCsr() const
{
    std::vector<std::uint32_t> row_ptr(rows_ + 1, 0);
    std::vector<std::uint32_t> col_idx;
    std::vector<float> values;
    col_idx.reserve(nnz());
    values.reserve(nnz());
    for (std::uint32_t r = 0; r < rows_; ++r) {
        row_ptr[r + 1] = row_ptr[r] +
                         static_cast<std::uint32_t>(lists_[r].size());
        for (const Entry &e : lists_[r]) {
            col_idx.push_back(e.first);
            values.push_back(e.second);
        }
    }
    return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

std::size_t
LilMatrix::nnz() const
{
    std::size_t total = 0;
    for (const auto &list : lists_)
        total += list.size();
    return total;
}

void
LilMatrix::push(std::uint32_t row, std::uint32_t col, float value)
{
    FAFNIR_ASSERT(row < rows_ && col < cols_, "entry out of range");
    auto &list = lists_[row];
    FAFNIR_ASSERT(list.empty() || list.back().first < col,
                  "columns must be pushed in increasing order per row");
    list.emplace_back(col, value);
}

bool
denseEqual(const DenseVector &a, const DenseVector &b, float tolerance)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const float scale =
            std::max(1.0f, std::max(std::fabs(a[i]), std::fabs(b[i])));
        if (std::fabs(a[i] - b[i]) > tolerance * scale)
            return false;
    }
    return true;
}

} // namespace fafnir::sparse
