/**
 * @file
 * Implementation of the synthetic matrix generators.
 */

#include "matgen.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.hh"

namespace fafnir::sparse
{

namespace
{

float
randomValue(Rng &rng)
{
    // Values in [0.5, 1.5) avoid cancellation masking summation bugs.
    return 0.5f + static_cast<float>(rng.nextDouble());
}

} // namespace

CsrMatrix
makeUniformRandom(std::uint32_t rows, std::uint32_t cols,
                  double nnz_per_row, Rng &rng)
{
    FAFNIR_ASSERT(nnz_per_row <= cols, "nnz_per_row exceeds columns");
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(rows * nnz_per_row));
    for (std::uint32_t r = 0; r < rows; ++r) {
        const auto degree = static_cast<std::uint32_t>(
            nnz_per_row + (rng.nextDouble() < (nnz_per_row -
                                               std::floor(nnz_per_row))
                               ? 1
                               : 0));
        std::unordered_set<std::uint32_t> seen;
        for (std::uint32_t k = 0; k < degree; ++k) {
            const auto c =
                static_cast<std::uint32_t>(rng.nextBelow(cols));
            if (seen.insert(c).second)
                triplets.push_back({r, c, randomValue(rng)});
        }
    }
    return CsrMatrix::fromTriplets(rows, cols, std::move(triplets));
}

CsrMatrix
makePowerLawGraph(std::uint32_t nodes, double avg_degree, double skew,
                  Rng &rng)
{
    // Out-degrees Zipfian around the average; targets Zipfian over a
    // shuffle-free popularity ranking (node 0 hottest).
    ZipfianGenerator targets(nodes, skew);
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(nodes * avg_degree));
    ZipfianGenerator degrees(
        std::max<std::uint64_t>(1,
                                static_cast<std::uint64_t>(avg_degree * 8)),
        1.0);
    for (std::uint32_t u = 0; u < nodes; ++u) {
        auto degree = static_cast<std::uint32_t>(degrees.sample(rng) + 1);
        degree = std::min(degree, nodes - 1);
        std::unordered_set<std::uint32_t> seen;
        for (std::uint32_t k = 0; k < degree; ++k) {
            const auto v =
                static_cast<std::uint32_t>(targets.sample(rng));
            if (v != u && seen.insert(v).second)
                triplets.push_back({u, v, randomValue(rng)});
        }
    }
    return CsrMatrix::fromTriplets(nodes, nodes, std::move(triplets));
}

CsrMatrix
makeRoadNetwork(std::uint32_t nodes, Rng &rng)
{
    // Grid-like: each node links to 2-4 neighbors with nearby ids.
    std::vector<Triplet> triplets;
    triplets.reserve(nodes * 3);
    const std::uint32_t stride =
        std::max<std::uint32_t>(2, static_cast<std::uint32_t>(
                                       std::sqrt(nodes)));
    for (std::uint32_t u = 0; u < nodes; ++u) {
        std::unordered_set<std::uint32_t> seen;
        auto link = [&](std::uint64_t v) {
            if (v < nodes && v != u &&
                seen.insert(static_cast<std::uint32_t>(v)).second) {
                triplets.push_back({u, static_cast<std::uint32_t>(v),
                                    randomValue(rng)});
            }
        };
        link(u + 1);
        link(u + stride);
        if (rng.nextBool(0.3))
            link(u + 1 + rng.nextBelow(stride));
        if (rng.nextBool(0.1))
            link(rng.nextBelow(nodes)); // occasional long edge (bridges)
    }
    return CsrMatrix::fromTriplets(nodes, nodes, std::move(triplets));
}

CsrMatrix
makeBanded(std::uint32_t n, std::uint32_t half_bandwidth, Rng &rng)
{
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(n) * 5);
    for (std::uint32_t r = 0; r < n; ++r) {
        triplets.push_back({r, r, randomValue(rng) + 4.0f}); // diagonal
        for (int k = 0; k < 4; ++k) {
            const std::uint64_t offset = 1 + rng.nextBelow(half_bandwidth);
            if (rng.nextBool(0.5)) {
                if (r + offset < n)
                    triplets.push_back({r,
                                        static_cast<std::uint32_t>(
                                            r + offset),
                                        randomValue(rng)});
            } else if (r >= offset) {
                triplets.push_back({r,
                                    static_cast<std::uint32_t>(r - offset),
                                    randomValue(rng)});
            }
        }
    }
    return CsrMatrix::fromTriplets(n, n, std::move(triplets));
}

std::vector<NamedWorkload>
figure14Workloads(Rng &rng)
{
    std::vector<NamedWorkload> workloads;
    // Scientific (matrix-inversion-style kernels), small to medium: zero
    // or one Fafnir merge iteration.
    workloads.push_back({"inv-small", "scientific",
                         makeBanded(1u << 11, 24, rng)});
    workloads.push_back({"inv-medium", "scientific",
                         makeBanded(1u << 14, 48, rng)});
    workloads.push_back({"pde-large", "scientific",
                         makeBanded(1u << 17, 96, rng)});
    // Graphs: a small social graph, a medium web graph, and a large
    // road-network ("RO") instance — the extreme-sparsity case the paper
    // singles out.
    workloads.push_back({"social-small", "graph",
                         makePowerLawGraph(1u << 12, 8.0, 0.8, rng)});
    workloads.push_back({"web-medium", "graph",
                         makePowerLawGraph(1u << 15, 12.0, 0.9, rng)});
    workloads.push_back({"road-RO", "graph",
                         makeRoadNetwork(1u << 18, rng)});
    return workloads;
}

DenseVector
makeOperand(std::uint32_t cols)
{
    DenseVector x(cols);
    for (std::uint32_t i = 0; i < cols; ++i)
        x[i] = 0.25f + static_cast<float>(i % 17) / 16.0f;
    return x;
}

} // namespace fafnir::sparse
