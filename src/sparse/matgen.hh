/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * The paper's Figure 14 evaluates SpMV workloads from two classes:
 * scientific computation (matrix-inversion-style kernels — banded /
 * near-diagonal structure) and graph analytics (road networks such as
 * "RO", and power-law web/social graphs). SuiteSparse/SNAP inputs are not
 * shipped with this repository, so the generators below produce matrices
 * with the same structural signatures: size, non-zeros per row, and
 * column-locality, which are what determine the Fafnir vs Two-Step
 * crossover (merge iteration count and stream volume).
 */

#ifndef FAFNIR_SPARSE_MATGEN_HH
#define FAFNIR_SPARSE_MATGEN_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "sparse/matrix.hh"

namespace fafnir::sparse
{

/** Uniform-random matrix with a fixed expected nnz per row. */
CsrMatrix makeUniformRandom(std::uint32_t rows, std::uint32_t cols,
                            double nnz_per_row, Rng &rng);

/**
 * Power-law (web/social) graph adjacency: out-degrees are Zipfian and
 * targets are Zipfian-popular, giving the heavy-tail column reuse typical
 * of web graphs.
 */
CsrMatrix makePowerLawGraph(std::uint32_t nodes, double avg_degree,
                            double skew, Rng &rng);

/**
 * Road-network-style graph: near-regular low degree (2-4), strong
 * locality (neighbors have nearby ids) — very sparse and very large, the
 * "RO" class of Figure 14.
 */
CsrMatrix makeRoadNetwork(std::uint32_t nodes, Rng &rng);

/** Banded scientific matrix (discretized PDE / inversion kernels). */
CsrMatrix makeBanded(std::uint32_t n, std::uint32_t half_bandwidth,
                     Rng &rng);

/** A named Figure 14 workload. */
struct NamedWorkload
{
    std::string name;
    /** "scientific" or "graph". */
    std::string domain;
    CsrMatrix matrix;
};

/**
 * The Figure 14 workload suite: small and large instances of each class,
 * scaled so the Fafnir merge-iteration count spans 0 to 2.
 */
std::vector<NamedWorkload> figure14Workloads(Rng &rng);

/** A deterministic dense operand vector for SpMV checks. */
DenseVector makeOperand(std::uint32_t cols);

} // namespace fafnir::sparse

#endif // FAFNIR_SPARSE_MATGEN_HH
